package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile mirrors HistogramSnapshot.Quantile's rank convention on
// the raw values: the rank-ceil(q·n) smallest observation.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// streams generates the randomized value streams the property tests
// run over: distinct shapes so bucket boundaries, the exact small-value
// range, and the wide tail all get exercised. Seeded — reruns are
// identical.
func streams(r *rand.Rand) map[string][]int64 {
	uniform := make([]int64, 5000)
	for i := range uniform {
		uniform[i] = r.Int63n(1_000_000)
	}
	logUniform := make([]int64, 5000)
	for i := range logUniform {
		logUniform[i] = int64(math.Exp(r.Float64() * 40)) // 1ns .. ~2^57ns
	}
	small := make([]int64, 2000)
	for i := range small {
		small[i] = r.Int63n(subCount + 2) // straddles the exact range
	}
	spiky := make([]int64, 3000)
	for i := range spiky {
		if r.Intn(100) == 0 {
			spiky[i] = 50_000_000 + r.Int63n(1_000_000) // 50ms tail
		} else {
			spiky[i] = 200 + r.Int63n(100) // ~200ns body
		}
	}
	return map[string][]int64{
		"uniform": uniform, "logUniform": logUniform, "small": small, "spiky": spiky,
	}
}

// TestQuantilePropertyWithinOneBucket is the quantile half of the
// histogram property test: for randomized streams, Quantile(q) lands in
// the same log-bucket as the exact quantile, which bounds its relative
// error by the bucket scheme (exact below subCount, ≤ 25% above).
func TestQuantilePropertyWithinOneBucket(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for name, vals := range streams(r) {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			exact := exactQuantile(sorted, q)
			gotBucket := bucketIndex(int64(got))
			exactBucket := bucketIndex(exact)
			if d := gotBucket - exactBucket; d < -1 || d > 1 {
				t.Errorf("%s: Quantile(%g) = %g (bucket %d), exact %d (bucket %d): off by %d buckets",
					name, q, got, gotBucket, exact, exactBucket, d)
			}
			if exact >= subCount {
				if rel := math.Abs(got-float64(exact)) / float64(exact); rel > 0.25 {
					t.Errorf("%s: Quantile(%g) = %g, exact %d: relative error %.3f exceeds the 25%% bucket bound",
						name, q, got, exact, rel)
				}
			} else if int64(got) != exact {
				t.Errorf("%s: Quantile(%g) = %g, want exactly %d in the exact small-value range",
					name, q, got, exact)
			}
		}
	}
}

// TestMergePropertyValueIdentical is the merge half: recording a stream
// into one histogram and partitioning it across K histograms then
// merging is value-identical, bucket for bucket.
func TestMergePropertyValueIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, vals := range streams(r) {
		for _, k := range []int{2, 3, 8} {
			single := NewHistogram()
			parts := make([]*Histogram, k)
			for i := range parts {
				parts[i] = NewHistogram()
			}
			for i, v := range vals {
				single.Record(v)
				parts[i%k].Record(v)
			}
			merged := NewHistogram()
			for _, p := range parts {
				merged.Merge(p)
			}
			if got, want := merged.Snapshot(), single.Snapshot(); got != want {
				t.Errorf("%s: merge of %d shards differs from single recording: count %d vs %d, sum %d vs %d",
					name, k, got.Count, want.Count, got.Sum, want.Sum)
			}
		}
	}
}

func TestBucketIndexBounds(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1025,
		1 << 30, 1<<62 - 1, 1 << 62, math.MaxInt64} {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := BucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d mapped to bucket %d = [%d, %d] which does not contain it", v, i, lo, hi)
		}
		// Bucket width bounds the relative error above the exact range.
		if v >= subCount && hi-lo+1 > lo/subCount+1 {
			t.Errorf("bucket %d = [%d, %d]: width %d exceeds lo/%d", i, lo, hi, hi-lo+1, subCount)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
	// Buckets tile the line with no gaps or overlaps.
	prevHi := int64(-1)
	for i := 0; i <= bucketIndex(math.MaxInt64); i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d = [%d, %d] inverted", i, lo, hi)
		}
		prevHi = hi
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := NewHistogram()
	h.Record(-3) // clamped, excluded from sum
	h.Record(0)
	h.Record(10)
	h.Observe(5 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4 (every record counts, clamped or not)", s.Count)
	}
	if want := int64(10 + 5000); s.Sum != want {
		t.Errorf("Sum = %d, want %d", s.Sum, want)
	}
	if s.Counts[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2 (the clamped and the zero record)", s.Counts[0])
	}
}

func TestSnapshotAddSub(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	before := h.Snapshot()
	for i := int64(1); i <= 50; i++ {
		h.Record(i * 1000)
	}
	after := h.Snapshot()
	interval := after.Sub(before)
	if interval.Count != 50 {
		t.Errorf("interval Count = %d, want 50", interval.Count)
	}
	if got := before.Add(interval); got != after {
		t.Errorf("before.Add(interval) != after")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if q := NewHistogram().Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("Quantile on empty histogram = %g, want NaN", q)
	}
}

// TestConcurrentRecorders hammers one histogram from parallel
// goroutines (the -race build makes this a memory-model check too) and
// verifies no observation is lost.
func TestConcurrentRecorders(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(r.Int63n(1 << 30))
			}
		}(int64(g))
	}
	// Concurrent snapshots must observe a consistent-enough view (each
	// counter individually exact; totals monotone).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot Count went backwards: %d after %d", s.Count, last)
				return
			}
			last = s.Count
		}
	}()
	wg.Wait()
	<-done
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Errorf("lost records: Count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !s.Hit() {
			t.Fatal("Sampler(1) must fire every call")
		}
	}
	sN := NewSampler(8)
	hits := 0
	const calls = 64000
	for i := 0; i < calls; i++ {
		if sN.Hit() {
			hits++
		}
	}
	// Single-goroutine calls all land on one shard counter, so the rate
	// is exact up to the final partial period.
	if want := calls / 8; hits < want-1 || hits > want+1 {
		t.Errorf("Sampler(8) fired %d of %d, want ~%d", hits, calls, want)
	}
}
