package obs

import (
	"math"
	"strings"
	"testing"
)

func TestEscapeLabelRoundTrip(t *testing.T) {
	for _, s := range []string{
		"", "plain", `back\slash`, `qu"ote`, "new\nline",
		`all "three" \ of
them`, "trailing\\", "\n\n\"\"\\\\",
	} {
		e := EscapeLabel(s)
		if strings.ContainsRune(e, '\n') {
			t.Errorf("EscapeLabel(%q) = %q still contains a raw newline", s, e)
		}
		u, err := UnescapeLabel(e)
		if err != nil {
			t.Errorf("UnescapeLabel(EscapeLabel(%q)): %v", s, err)
			continue
		}
		if u != s {
			t.Errorf("round trip of %q: got %q", s, u)
		}
	}
}

func TestUnescapeLabelRejectsMalformed(t *testing.T) {
	for _, s := range []string{`\`, `\x`, `ok\`, `\q`} {
		if _, err := UnescapeLabel(s); err == nil {
			t.Errorf("UnescapeLabel(%q) accepted malformed input", s)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"":           "_",
		"ok_name":    "ok_name",
		"9lives":     "_lives",
		"a-b.c":      "a_b_c",
		"ota:sum":    "ota:sum",
		"UpperCase0": "UpperCase0",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTextWriterParsesBack renders a page with every sample shape the
// exposition uses and feeds it to the package's own parser: what the
// writer emits, a scraper must read.
func TestTextWriterParsesBack(t *testing.T) {
	var b strings.Builder
	w := NewTextWriter(&b)
	w.Family("ota_requests_total", "requests since boot", "counter")
	w.Int("ota_requests_total", nil, 12345)
	w.Family("ota_shard_requests_total", "per-shard requests", "counter")
	w.Int("ota_shard_requests_total", []Label{{"shard", "0"}}, 40)
	w.Int("ota_shard_requests_total", []Label{{"shard", "1"}}, 2)
	w.Sample("ota_waf", nil, 1.0625)
	w.Sample("ota_breaker_info", []Label{
		{"fallback", "admit-all"},
		{"last_error", "tree: feature 7 \"out\nof range\""},
	}, 1)
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	w.Histogram("ota_lookup_duration_seconds", "lookup latency", nil, h.Snapshot(), 1e-9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parser rejects the writer's own page: %v\n%s", err, b.String())
	}
	byName := map[string][]Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if v := byName["ota_requests_total"][0].Value; v != 12345 {
		t.Errorf("ota_requests_total = %g", v)
	}
	if got := len(byName["ota_shard_requests_total"]); got != 2 {
		t.Errorf("want 2 shard samples, got %d", got)
	}
	if v := byName["ota_breaker_info"][0].Label("last_error"); v != "tree: feature 7 \"out\nof range\"" {
		t.Errorf("label escaping mangled the error: %q", v)
	}

	// Histogram family consistency: cumulative buckets are monotone,
	// +Inf equals _count, _sum matches.
	var les, cums []float64
	for _, s := range byName["ota_lookup_duration_seconds_bucket"] {
		le, err := parseValue(s.Label("le"))
		if err != nil {
			t.Fatalf("bad le %q", s.Label("le"))
		}
		les = append(les, le)
		cums = append(cums, s.Value)
	}
	if len(les) == 0 {
		t.Fatal("no buckets emitted")
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("cumulative bucket counts not monotone: %v", cums)
		}
	}
	if last := cums[len(cums)-1]; last != 1000 {
		t.Errorf("+Inf bucket = %g, want 1000", last)
	}
	if c := byName["ota_lookup_duration_seconds_count"][0].Value; c != 1000 {
		t.Errorf("_count = %g, want 1000", c)
	}
	wantSum := float64(1000*1001/2) * 1000 * 1e-9
	if s := byName["ota_lookup_duration_seconds_sum"][0].Value; math.Abs(s-wantSum) > 1e-9 {
		t.Errorf("_sum = %g, want %g", s, wantSum)
	}

	// The scrape-side quantile lands within the histogram's error bound
	// of the true p50 (500µs).
	p50 := BucketQuantile(les, cums, 0.5)
	if p50 < 400e-6 || p50 > 650e-6 {
		t.Errorf("scraped p50 = %g s, want ~500µs", p50)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, page := range []string{
		"no_value\n",
		"1bad_name 3\n",
		`m{l=unquoted} 1` + "\n",
		`m{l="open} 1` + "\n",
		"m not_a_number\n",
	} {
		if _, err := ParseText(strings.NewReader(page)); err == nil {
			t.Errorf("ParseText accepted %q", page)
		}
	}
}

func TestParseTextSkipsCommentsAndTimestamps(t *testing.T) {
	page := "# HELP m help\n# TYPE m counter\n\nm{a=\"b\"} 3 1712345678\n"
	samples, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Value != 3 || samples[0].Label("a") != "b" {
		t.Fatalf("got %+v", samples)
	}
}

func TestBucketQuantileEmpty(t *testing.T) {
	if !math.IsNaN(BucketQuantile(nil, nil, 0.5)) {
		t.Error("empty BucketQuantile must be NaN")
	}
	if !math.IsNaN(BucketQuantile([]float64{1}, []float64{0}, 0.5)) {
		t.Error("zero-count BucketQuantile must be NaN")
	}
}
