package obs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func randEvent(r *rand.Rand) TraceEvent {
	return TraceEvent{
		Key:      r.Uint64(),
		Tick:     r.Int63(),
		Shard:    int32(r.Intn(64)),
		Flags:    uint32(r.Intn(1 << 7)),
		Breaker:  uint8(r.Intn(4)),
		Flash:    uint8(r.Intn(3)),
		ParseNs:  r.Int63n(1 << 30),
		EngineNs: r.Int63n(1 << 30),
		TotalNs:  r.Int63n(1 << 31),
	}
}

func TestTraceEventRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		ev := randEvent(r)
		b := ev.AppendBinary(nil)
		if len(b) != TraceEventLen {
			t.Fatalf("encoded %d bytes, want %d", len(b), TraceEventLen)
		}
		got, rest, err := DecodeTraceEvent(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		if got != ev {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
		}
	}
}

func TestTraceEventDecodeErrors(t *testing.T) {
	ev := randEvent(rand.New(rand.NewSource(3)))
	b := ev.AppendBinary(nil)
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeTraceEvent(b[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", cut)
		}
	}
	bad := append([]byte(nil), b...)
	bad[0] = 99
	if _, _, err := DecodeTraceEvent(bad); err == nil {
		t.Error("unknown version decoded without error")
	}
}

func TestEncodeDecodeEvents(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	evs := make([]TraceEvent, 17)
	for i := range evs {
		evs[i] = randEvent(r)
	}
	got, err := DecodeEvents(EncodeEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("EncodeEvents/DecodeEvents round trip mismatch")
	}
	if _, err := DecodeEvents(append(EncodeEvents(evs), 0xff)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}

func TestRingNewestFirstAndOverwrite(t *testing.T) {
	r := NewRing(16, 1)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.Add(TraceEvent{Key: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("Events returned %d, want 16 (capacity)", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(39 - i); ev.Key != want {
			t.Fatalf("event %d has key %d, want %d (newest first)", i, ev.Key, want)
		}
	}
	if r.Recorded() != 40 {
		t.Errorf("Recorded = %d, want 40", r.Recorded())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(64, 1)
	for i := 0; i < 5; i++ {
		r.Add(TraceEvent{Key: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("Events returned %d, want 5", len(evs))
	}
	if evs[0].Key != 4 || evs[4].Key != 0 {
		t.Fatalf("order wrong: %v", evs)
	}
}

func TestRingSampling(t *testing.T) {
	r := NewRing(1024, 4)
	sampled := 0
	for i := 0; i < 4000; i++ {
		if r.Sample() {
			sampled++
			r.Add(TraceEvent{Key: uint64(i)})
		}
	}
	if want := 1000; sampled < want-1 || sampled > want+1 {
		t.Errorf("sampled %d of 4000 at 1-in-4, want ~%d", sampled, want)
	}
	if r.Seen() != 4000 {
		t.Errorf("Seen = %d, want 4000", r.Seen())
	}
}

// TestRingConcurrent races writers against readers; the -race build
// verifies the lock-free publication is clean.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if r.Sample() {
					r.Add(TraceEvent{Key: uint64(g*1_000_000 + i), TotalNs: int64(i)})
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range r.Events() {
				if ev.Key/1_000_000 > 3 {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := len(r.Events()); got != 64 {
		t.Errorf("full ring returned %d events, want 64", got)
	}
}
