package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzMetricsEscape pins the Prometheus label escaper: for any string,
// escaping must round-trip through both the unescaper and the package's
// own exposition parser, and the escaped form must be safe to embed in
// a quoted label value (no raw newline, no unescaped quote that would
// terminate the value early).
func FuzzMetricsEscape(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add(`back\slash "quote"`)
	f.Add("multi\nline\n")
	f.Add(`\\\"` + "\n")
	f.Add("\x00\xff binary")
	f.Fuzz(func(t *testing.T, s string) {
		e := EscapeLabel(s)
		if strings.ContainsRune(e, '\n') {
			t.Fatalf("EscapeLabel(%q) = %q leaks a raw newline", s, e)
		}
		u, err := UnescapeLabel(e)
		if err != nil {
			t.Fatalf("UnescapeLabel(EscapeLabel(%q)): %v", s, err)
		}
		if u != s {
			t.Fatalf("round trip of %q: got %q", s, u)
		}
		// The escaped value embedded in a sample line must parse back to
		// the original — the property the /metrics page relies on.
		line := `m{v="` + e + `"} 1` + "\n"
		samples, err := ParseText(strings.NewReader(line))
		if err != nil {
			t.Fatalf("parser rejects embedded escape of %q: %v (line %q)", s, err, line)
		}
		if len(samples) != 1 || samples[0].Label("v") != s {
			t.Fatalf("embedded round trip of %q: got %+v", s, samples)
		}
		// Unescaping arbitrary input must never panic; errors are fine.
		_, _ = UnescapeLabel(s)
	})
}

// FuzzTraceDecode pins the decision-trace codec: decoding arbitrary
// bytes never panics, and anything that decodes cleanly re-encodes to
// the identical byte stream (the codec is canonical).
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{traceEventV1})
	r := rand.New(rand.NewSource(1))
	var seed []byte
	for i := 0; i < 3; i++ {
		seed = randEvent(r).AppendBinary(seed)
	}
	f.Add(seed)
	f.Add(seed[:TraceEventLen])
	f.Add(seed[:TraceEventLen-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		evs, err := DecodeEvents(b)
		if err != nil {
			return
		}
		if re := EncodeEvents(evs); !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", b, re)
		}
		// Single-event decode agrees with the stream decoder.
		if len(evs) > 0 {
			ev, rest, err := DecodeTraceEvent(b)
			if err != nil {
				t.Fatalf("stream decoded %d events but single decode failed: %v", len(evs), err)
			}
			if ev != evs[0] || len(rest) != len(b)-TraceEventLen {
				t.Fatal("single decode disagrees with stream decode")
			}
		}
	})
}
