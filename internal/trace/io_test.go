package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := MustGenerate(DefaultConfig(9, 2000))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != tr.Horizon {
		t.Fatalf("horizon %d != %d", got.Horizon, tr.Horizon)
	}
	if len(got.Owners) != len(tr.Owners) || len(got.Photos) != len(tr.Photos) || len(got.Requests) != len(tr.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range tr.Owners {
		if got.Owners[i] != tr.Owners[i] {
			t.Fatalf("owner %d differs", i)
		}
	}
	for i := range tr.Photos {
		if got.Photos[i] != tr.Photos[i] {
			t.Fatalf("photo %d differs", i)
		}
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestTraceSaveLoad(t *testing.T) {
	tr := MustGenerate(DefaultConfig(10, 500))
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatal("request count differs after save/load")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("loading a missing file must error")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short input must error")
	}
	bad := bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0})
	if _, err := ReadFrom(bad); err == nil {
		t.Fatal("bad magic must error")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0xe0, 0xac, 0xac, 0x0f}) // little-endian magic
	buf.Write([]byte{0xff, 0, 0, 0})
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("bad version must error")
	}
}
