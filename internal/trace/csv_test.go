package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := MustGenerate(DefaultConfig(13, 1500))
	var buf bytes.Buffer
	if err := tr.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("requests: %d vs %d", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
	for i := range tr.Photos {
		if got.Photos[i] != tr.Photos[i] {
			t.Fatalf("photo %d differs: %+v vs %+v", i, got.Photos[i], tr.Photos[i])
		}
	}
	// Owners: only owners with photos appear in CSV rows; check those.
	for i := range tr.Owners {
		if tr.Owners[i].NumPhotos == 0 {
			continue
		}
		if got.Owners[i] != tr.Owners[i] {
			t.Fatalf("owner %d differs: %+v vs %+v", i, got.Owners[i], tr.Owners[i])
		}
	}
	// Horizon must cover the last request and align to whole days.
	if got.Horizon <= got.Requests[len(got.Requests)-1].Time {
		t.Fatal("horizon too small")
	}
	if got.Horizon%86400 != 0 {
		t.Fatalf("horizon %d not day-aligned", got.Horizon)
	}
	// Workload statistics survive the round trip.
	a, b := Summarize(tr), Summarize(got)
	if a.OneTimeObjects != b.OneTimeObjects || a.NumRequests != b.NumRequests {
		t.Fatal("summary changed across round trip")
	}
}

func TestImportCSVErrors(t *testing.T) {
	head := strings.Join(csvHeader, ",") + "\n"
	cases := []struct {
		name string
		body string
	}{
		{"bad header", "nope,b\n"},
		{"bad time", head + "x,0,0,l5,10,0,pc,1,1,1\n"},
		{"bad photo", head + "1,x,0,l5,10,0,pc,1,1,1\n"},
		{"bad owner", head + "1,0,x,l5,10,0,pc,1,1,1\n"},
		{"bad type", head + "1,0,0,zz,10,0,pc,1,1,1\n"},
		{"bad size", head + "1,0,0,l5,0,0,pc,1,1,1\n"},
		{"bad upload", head + "1,0,0,l5,10,x,pc,1,1,1\n"},
		{"bad terminal", head + "1,0,0,l5,10,0,tablet,1,1,1\n"},
		{"bad friends", head + "1,0,0,l5,10,0,pc,x,1,1\n"},
		{"bad views", head + "1,0,0,l5,10,0,pc,1,x,1\n"},
		{"bad photos", head + "1,0,0,l5,10,0,pc,1,1,x\n"},
		{"unsorted", head + "5,0,0,l5,10,0,pc,1,1,1\n2,0,0,l5,10,0,pc,1,1,1\n"},
		{"short row", head + "1,2\n"},
	}
	for _, c := range cases {
		if _, err := ImportCSV(strings.NewReader(c.body)); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestImportCSVSparseIDs(t *testing.T) {
	head := strings.Join(csvHeader, ",") + "\n"
	body := head +
		"1,5,2,l5,10,0,pc,3,2.5,4\n" +
		"2,0,0,a0,20,-5,mobile,1,1,1\n" +
		"9,5,2,l5,10,0,pc,3,2.5,4\n"
	tr, err := ImportCSV(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Photos) != 6 || len(tr.Owners) != 3 {
		t.Fatalf("tables: %d photos, %d owners", len(tr.Photos), len(tr.Owners))
	}
	if tr.Photos[5].Type != TypeL5 || tr.Photos[0].Type != TypeA0 {
		t.Fatal("photo metadata wrong")
	}
	if tr.Owners[2].ActiveFriends != 3 || tr.Owners[2].AvgViews != 2.5 {
		t.Fatal("owner metadata wrong")
	}
	if len(tr.Requests) != 3 || tr.Requests[2].Photo != 5 {
		t.Fatal("requests wrong")
	}
}

func TestImportCSVEmpty(t *testing.T) {
	head := strings.Join(csvHeader, ",") + "\n"
	tr, err := ImportCSV(strings.NewReader(head))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 0 || tr.Horizon != 0 {
		t.Fatal("empty CSV must produce an empty trace")
	}
}
