// Package trace synthesizes and represents QQPhoto-style photo access
// traces.
//
// The paper evaluates on a 9-day production log of Tencent's QQ photo
// album (5.8 G requests over 1.48 G objects, 1:100 sampled). That trace
// is proprietary, so this package provides a generative model calibrated
// to every statistic the paper reports about it:
//
//   - 61.5 % of objects are accessed exactly once (§2.2);
//   - first accesses (compulsory misses) are ~25.5 % of all accesses, so
//     an infinite cache caps the hit rate at ~74.5 % (§2.2);
//   - twelve photo types (six resolutions × {png, jpg}) with type l5
//     receiving ~45 % of requests (§3.2.1, Figure 3);
//   - a diurnal request-rate cycle peaking around 20:00 and bottoming
//     around 05:00 (§4.4.3);
//   - photo popularity decays with age, and owner social activity
//     correlates with photo popularity (§3.2.1);
//   - multi-access popularity is Zipf/Pareto heavy-tailed (§6.2).
//
// Crucially, the latent popularity that decides whether an object is
// one-time-access is only partially observable through the features the
// classifier sees, so a well-tuned decision tree reaches the paper's
// ~0.86 accuracy rather than an unrealistic 1.0.
package trace

import "fmt"

// PhotoType identifies one of the twelve photo types: six resolutions
// (a, b, c, m, l, o) crossed with two specifications (0 = png, 5 = jpg).
// The paper discretizes these to the values 1–12 (§3.2.3); this package
// uses 0–11 internally and exposes the paper's 1-based value through
// Discretized.
type PhotoType uint8

// The twelve photo types, in the paper's enumeration order (§3.2.3).
const (
	TypeA0 PhotoType = iota
	TypeA5
	TypeB0
	TypeB5
	TypeC0
	TypeC5
	TypeM0
	TypeM5
	TypeO0
	TypeO5
	TypeL0
	TypeL5
	NumPhotoTypes = 12
)

var photoTypeNames = [NumPhotoTypes]string{
	"a0", "a5", "b0", "b5", "c0", "c5", "m0", "m5", "o0", "o5", "l0", "l5",
}

// String returns the paper's name for the type (e.g. "l5").
func (t PhotoType) String() string {
	if int(t) < len(photoTypeNames) {
		return photoTypeNames[t]
	}
	return fmt.Sprintf("PhotoType(%d)", uint8(t))
}

// Discretized returns the paper's 1..12 discretized value (§3.2.3).
func (t PhotoType) Discretized() int { return int(t) + 1 }

// Terminal is the requesting device class (§3.2.1): personal computer or
// mobile device, discretized to 0 and 1 respectively (§3.2.3).
type Terminal uint8

// Terminal classes.
const (
	TerminalPC     Terminal = 0
	TerminalMobile Terminal = 1
)

// String returns a human-readable terminal name.
func (tt Terminal) String() string {
	if tt == TerminalPC {
		return "pc"
	}
	return "mobile"
}

// Owner carries the photo owner's social information (§3.2.1).
type Owner struct {
	// ActiveFriends is the number of users who interacted with the owner
	// in the recent past.
	ActiveFriends int32
	// AvgViews is the ratio of total views of the owner's photos to the
	// number of the owner's photos, as realized over the trace window.
	AvgViews float64
	// NumPhotos is how many photos this owner uploaded.
	NumPhotos int32
}

// Photo is one cached object.
type Photo struct {
	// Owner indexes into Trace.Owners.
	Owner uint32
	// Type is the photo's resolution/specification class.
	Type PhotoType
	// Size is the object size in bytes.
	Size int64
	// Upload is the upload time in seconds relative to the trace epoch;
	// it is negative for photos uploaded before the observation window.
	Upload int64
}

// Request is a single access in the trace. Photos are identified by
// their index into Trace.Photos.
type Request struct {
	// Time is seconds since the trace epoch.
	Time int64
	// Photo indexes into Trace.Photos.
	Photo uint32
	// Terminal is the requesting device class.
	Terminal Terminal
}

// Trace is a complete synthetic workload: the object population, the
// owner population, and the time-ordered request stream.
type Trace struct {
	Photos   []Photo
	Owners   []Owner
	Requests []Request
	// Horizon is the window length in seconds (requests satisfy
	// 0 <= Time < Horizon).
	Horizon int64
}

// NumRequests returns the number of accesses in the trace.
func (t *Trace) NumRequests() int { return len(t.Requests) }

// NumPhotos returns the object population size.
func (t *Trace) NumPhotos() int { return len(t.Photos) }

// TotalBytes returns the sum of all photo sizes (the storage footprint).
func (t *Trace) TotalBytes() int64 {
	var sum int64
	for i := range t.Photos {
		sum += t.Photos[i].Size
	}
	return sum
}

// MeanPhotoSize returns the average photo size in bytes (0 if empty).
func (t *Trace) MeanPhotoSize() int64 {
	if len(t.Photos) == 0 {
		return 0
	}
	return t.TotalBytes() / int64(len(t.Photos))
}

// Validate reports the first structural problem in the trace: requests
// referencing photos out of range, photos referencing owners out of
// range, invalid photo types or terminals, non-positive sizes, or
// unsorted request times. Deserializers call it so corrupt inputs are
// rejected instead of crashing downstream consumers.
func (t *Trace) Validate() error {
	for i := range t.Photos {
		p := &t.Photos[i]
		if int(p.Owner) >= len(t.Owners) {
			return fmt.Errorf("trace: photo %d references owner %d of %d", i, p.Owner, len(t.Owners))
		}
		if p.Type >= NumPhotoTypes {
			return fmt.Errorf("trace: photo %d has invalid type %d", i, p.Type)
		}
		if p.Size <= 0 {
			return fmt.Errorf("trace: photo %d has non-positive size %d", i, p.Size)
		}
	}
	var prev int64 = -1 << 62
	for i := range t.Requests {
		r := &t.Requests[i]
		if int(r.Photo) >= len(t.Photos) {
			return fmt.Errorf("trace: request %d references photo %d of %d", i, r.Photo, len(t.Photos))
		}
		if r.Terminal > TerminalMobile {
			return fmt.Errorf("trace: request %d has invalid terminal %d", i, r.Terminal)
		}
		if r.Time < prev {
			return fmt.Errorf("trace: request %d out of time order", i)
		}
		prev = r.Time
	}
	return nil
}

// HourOfDay returns the hour (0–23) of a trace timestamp. Timestamps
// before the epoch are folded into the same 24-hour cycle.
func HourOfDay(sec int64) int {
	s := sec % 86400
	if s < 0 {
		s += 86400
	}
	return int(s / 3600)
}
