package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV interchange format: one row per request with the photo and owner
// metadata denormalized onto it, so external traces (or spreadsheet
// tooling) can round-trip with the simulator without the binary format.
//
// Columns: time_sec, photo_id, owner_id, photo_type (paper name, e.g.
// "l5"), size_bytes, upload_sec, terminal ("pc"/"mobile"),
// active_friends, avg_views, owner_photos.
var csvHeader = []string{
	"time_sec", "photo_id", "owner_id", "photo_type", "size_bytes",
	"upload_sec", "terminal", "active_friends", "avg_views", "owner_photos",
}

// ExportCSV writes the trace in the CSV interchange format.
func (t *Trace) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for i := range t.Requests {
		r := &t.Requests[i]
		p := &t.Photos[r.Photo]
		o := &t.Owners[p.Owner]
		row[0] = strconv.FormatInt(r.Time, 10)
		row[1] = strconv.FormatUint(uint64(r.Photo), 10)
		row[2] = strconv.FormatUint(uint64(p.Owner), 10)
		row[3] = p.Type.String()
		row[4] = strconv.FormatInt(p.Size, 10)
		row[5] = strconv.FormatInt(p.Upload, 10)
		row[6] = r.Terminal.String()
		row[7] = strconv.FormatInt(int64(o.ActiveFriends), 10)
		row[8] = strconv.FormatFloat(o.AvgViews, 'g', -1, 64)
		row[9] = strconv.FormatInt(int64(o.NumPhotos), 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a trace in the CSV interchange format. Photo and
// owner tables are rebuilt from each id's first occurrence; photo and
// owner ids must be dense enough to use as slice indices (the importer
// grows the tables to the largest id seen). Requests must be sorted by
// time_sec.
func ImportCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	typeByName := make(map[string]PhotoType, NumPhotoTypes)
	for ty := 0; ty < NumPhotoTypes; ty++ {
		typeByName[PhotoType(ty).String()] = PhotoType(ty)
	}

	t := &Trace{}
	photoSeen := []bool{}
	var prevTime int64
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		timeSec, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", line, rec[0])
		}
		if timeSec < prevTime {
			return nil, fmt.Errorf("trace: line %d: requests must be time-sorted (%d after %d)", line, timeSec, prevTime)
		}
		prevTime = timeSec
		photoID, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad photo id %q", line, rec[1])
		}
		ownerID, err := strconv.ParseUint(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad owner id %q", line, rec[2])
		}
		ty, ok := typeByName[rec[3]]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown photo type %q", line, rec[3])
		}
		size, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", line, rec[4])
		}
		upload, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad upload %q", line, rec[5])
		}
		var term Terminal
		switch rec[6] {
		case "pc":
			term = TerminalPC
		case "mobile":
			term = TerminalMobile
		default:
			return nil, fmt.Errorf("trace: line %d: unknown terminal %q", line, rec[6])
		}
		friends, err := strconv.ParseInt(rec[7], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad active_friends %q", line, rec[7])
		}
		avgViews, err := strconv.ParseFloat(rec[8], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad avg_views %q", line, rec[8])
		}
		ownerPhotos, err := strconv.ParseInt(rec[9], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad owner_photos %q", line, rec[9])
		}

		for uint64(len(t.Photos)) <= photoID {
			t.Photos = append(t.Photos, Photo{})
			photoSeen = append(photoSeen, false)
		}
		for uint64(len(t.Owners)) <= ownerID {
			t.Owners = append(t.Owners, Owner{})
		}
		if !photoSeen[photoID] {
			t.Photos[photoID] = Photo{
				Owner:  uint32(ownerID),
				Type:   ty,
				Size:   size,
				Upload: upload,
			}
			photoSeen[photoID] = true
		}
		t.Owners[ownerID] = Owner{
			ActiveFriends: int32(friends),
			AvgViews:      avgViews,
			NumPhotos:     int32(ownerPhotos),
		}
		t.Requests = append(t.Requests, Request{
			Time:     timeSec,
			Photo:    uint32(photoID),
			Terminal: term,
		})
	}
	if len(t.Requests) > 0 {
		t.Horizon = t.Requests[len(t.Requests)-1].Time + 1
		// Round the horizon up to whole days so diurnal bookkeeping
		// (retraining schedules, per-day quality) stays aligned.
		if rem := t.Horizon % 86400; rem != 0 {
			t.Horizon += 86400 - rem
		}
	}
	return t, nil
}
