package trace

import (
	"fmt"
	"strings"
)

// Summary aggregates the workload statistics the paper reports in §2.2
// and Figure 3, used to verify generator calibration.
type Summary struct {
	NumPhotos   int
	NumRequests int
	TotalBytes  int64
	MeanSize    int64

	// OneTimeObjects is the number of photos accessed exactly once.
	OneTimeObjects int
	// OneTimeObjectFraction is OneTimeObjects / NumPhotos (paper: 0.615).
	OneTimeObjectFraction float64
	// UniqueAccessShare is NumPhotos / NumRequests, the compulsory-miss
	// share (paper: ~0.255).
	UniqueAccessShare float64
	// HitRateCap is 1 - UniqueAccessShare, the infinite-cache hit rate
	// (paper: ~0.745).
	HitRateCap float64
	// OneTimeAccessShare is OneTimeObjects / NumRequests: the share of
	// accesses that are the single access of a one-time photo.
	OneTimeAccessShare float64

	// TypeRequestShare is the fraction of requests per photo type
	// (paper, Figure 3: l5 ~= 45%).
	TypeRequestShare [NumPhotoTypes]float64
	// TypeObjectShare is the fraction of photos per type.
	TypeObjectShare [NumPhotoTypes]float64

	// HourlyRequests counts requests per hour of day (0-23).
	HourlyRequests [24]int
	// HourlyOneTimeShare is, per hour, the fraction of requests that
	// target one-time photos (paper: highest ~05:00, lowest ~20:00).
	HourlyOneTimeShare [24]float64

	// MobileShare is the fraction of requests from mobile terminals.
	MobileShare float64
}

// Summarize computes a Summary in one pass over the trace.
func Summarize(t *Trace) Summary {
	var s Summary
	s.NumPhotos = len(t.Photos)
	s.NumRequests = len(t.Requests)
	s.TotalBytes = t.TotalBytes()
	s.MeanSize = t.MeanPhotoSize()

	counts := make([]int32, len(t.Photos))
	var hourlyOne [24]int
	mobile := 0
	for i := range t.Requests {
		r := &t.Requests[i]
		counts[r.Photo]++
		s.TypeRequestShare[t.Photos[r.Photo].Type]++
		s.HourlyRequests[HourOfDay(r.Time)]++
		if r.Terminal == TerminalMobile {
			mobile++
		}
	}
	for i := range t.Requests {
		r := &t.Requests[i]
		if counts[r.Photo] == 1 {
			hourlyOne[HourOfDay(r.Time)]++
		}
	}
	for _, c := range counts {
		if c == 1 {
			s.OneTimeObjects++
		}
	}
	for i := range t.Photos {
		s.TypeObjectShare[t.Photos[i].Type]++
	}

	if s.NumPhotos > 0 {
		s.OneTimeObjectFraction = float64(s.OneTimeObjects) / float64(s.NumPhotos)
		for i := range s.TypeObjectShare {
			s.TypeObjectShare[i] /= float64(s.NumPhotos)
		}
	}
	if s.NumRequests > 0 {
		s.UniqueAccessShare = float64(s.NumPhotos) / float64(s.NumRequests)
		s.HitRateCap = 1 - s.UniqueAccessShare
		s.OneTimeAccessShare = float64(s.OneTimeObjects) / float64(s.NumRequests)
		s.MobileShare = float64(mobile) / float64(s.NumRequests)
		for i := range s.TypeRequestShare {
			s.TypeRequestShare[i] /= float64(s.NumRequests)
		}
	}
	for h := 0; h < 24; h++ {
		if s.HourlyRequests[h] > 0 {
			s.HourlyOneTimeShare[h] = float64(hourlyOne[h]) / float64(s.HourlyRequests[h])
		}
	}
	return s
}

// String renders the summary as a report comparable against the paper's
// §2.2 and Figure 3 numbers.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objects:             %d\n", s.NumPhotos)
	fmt.Fprintf(&b, "requests:            %d\n", s.NumRequests)
	fmt.Fprintf(&b, "footprint:           %.2f GB (mean object %.1f KB)\n",
		float64(s.TotalBytes)/(1<<30), float64(s.MeanSize)/1024)
	fmt.Fprintf(&b, "one-time objects:    %d (%.1f%%; paper: 61.5%%)\n",
		s.OneTimeObjects, 100*s.OneTimeObjectFraction)
	fmt.Fprintf(&b, "unique-access share: %.1f%% (paper: ~25.5%%)\n", 100*s.UniqueAccessShare)
	fmt.Fprintf(&b, "hit-rate cap:        %.1f%% (paper: ~74.5%%)\n", 100*s.HitRateCap)
	fmt.Fprintf(&b, "mobile share:        %.1f%%\n", 100*s.MobileShare)
	fmt.Fprintf(&b, "type request shares (paper: l5 ~= 45%%):\n")
	for ty := 0; ty < NumPhotoTypes; ty++ {
		fmt.Fprintf(&b, "  %-3s %6.2f%%\n", PhotoType(ty), 100*s.TypeRequestShare[ty])
	}
	fmt.Fprintf(&b, "hourly request counts / one-time share:\n")
	for h := 0; h < 24; h++ {
		fmt.Fprintf(&b, "  %02d:00 %9d  %5.1f%%\n", h, s.HourlyRequests[h], 100*s.HourlyOneTimeShare[h])
	}
	return b.String()
}
