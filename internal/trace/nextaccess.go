package trace

// NoNext marks a request whose photo is never accessed again within the
// trace.
const NoNext = -1

// BuildNextAccess returns, for every request index i, the index of the
// next request to the same photo, or NoNext if there is none. It is the
// "future knowledge" index consumed by the Belady policy, the oracle
// (Ideal) admission filter, and the one-time-access labeler.
//
// It runs in O(n) with one backward pass.
func BuildNextAccess(t *Trace) []int {
	next := make([]int, len(t.Requests))
	last := make(map[uint32]int, len(t.Photos))
	for i := len(t.Requests) - 1; i >= 0; i-- {
		p := t.Requests[i].Photo
		if j, ok := last[p]; ok {
			next[i] = j
		} else {
			next[i] = NoNext
		}
		last[p] = i
	}
	return next
}

// BuildPrevAccess returns, for every request index i, the index of the
// previous request to the same photo, or NoNext if this is the photo's
// first access. The feature extractor uses it to compute recency.
func BuildPrevAccess(t *Trace) []int {
	prev := make([]int, len(t.Requests))
	last := make(map[uint32]int, len(t.Photos))
	for i := range t.Requests {
		p := t.Requests[i].Photo
		if j, ok := last[p]; ok {
			prev[i] = j
		} else {
			prev[i] = NoNext
		}
		last[p] = i
	}
	return prev
}

// ReaccessDistance returns, for request i with next-access index next[i],
// the number of intervening requests before the photo is accessed again
// (the paper's reaccess distance, §4.3), or -1 if never.
func ReaccessDistance(next []int, i int) int {
	n := next[i]
	if n == NoNext {
		return -1
	}
	return n - i
}
