package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary trace format: a fixed magic/version header followed by the
// owner, photo, and request arrays in little-endian fixed-width
// records. The format is self-describing enough for the CLI tools to
// hand traces between each other; it is not a long-term archival
// format.
const (
	traceMagic   = uint32(0x0facace0)
	traceVersion = uint32(1)
)

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []uint32{traceMagic, traceVersion}
	for _, h := range hdr {
		if err := write(h); err != nil {
			return n, err
		}
	}
	if err := write(uint64(t.Horizon)); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.Owners))); err != nil {
		return n, err
	}
	for i := range t.Owners {
		o := &t.Owners[i]
		if err := write(o.ActiveFriends); err != nil {
			return n, err
		}
		if err := write(o.AvgViews); err != nil {
			return n, err
		}
		if err := write(o.NumPhotos); err != nil {
			return n, err
		}
	}
	if err := write(uint64(len(t.Photos))); err != nil {
		return n, err
	}
	for i := range t.Photos {
		p := &t.Photos[i]
		if err := write(p.Owner); err != nil {
			return n, err
		}
		if err := write(uint8(p.Type)); err != nil {
			return n, err
		}
		if err := write(p.Size); err != nil {
			return n, err
		}
		if err := write(p.Upload); err != nil {
			return n, err
		}
	}
	if err := write(uint64(len(t.Requests))); err != nil {
		return n, err
	}
	for i := range t.Requests {
		r := &t.Requests[i]
		if err := write(r.Time); err != nil {
			return n, err
		}
		if err := write(r.Photo); err != nil {
			return n, err
		}
		if err := write(uint8(r.Terminal)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	read := func(v interface{}) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var magic, version uint32
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	t := &Trace{}
	var horizon, nOwners uint64
	if err := read(&horizon); err != nil {
		return nil, err
	}
	t.Horizon = int64(horizon)
	if err := read(&nOwners); err != nil {
		return nil, err
	}
	if nOwners > 1<<31 {
		return nil, fmt.Errorf("trace: implausible owner count %d", nOwners)
	}
	// Grow the tables incrementally so a corrupt header claiming a huge
	// count fails fast at EOF instead of allocating gigabytes up front.
	for i := uint64(0); i < nOwners; i++ {
		var o Owner
		if err := read(&o.ActiveFriends); err != nil {
			return nil, err
		}
		if err := read(&o.AvgViews); err != nil {
			return nil, err
		}
		if err := read(&o.NumPhotos); err != nil {
			return nil, err
		}
		t.Owners = append(t.Owners, o)
	}
	var nPhotos uint64
	if err := read(&nPhotos); err != nil {
		return nil, err
	}
	if nPhotos > 1<<31 {
		return nil, fmt.Errorf("trace: implausible photo count %d", nPhotos)
	}
	for i := uint64(0); i < nPhotos; i++ {
		var p Photo
		var ty uint8
		if err := read(&p.Owner); err != nil {
			return nil, err
		}
		if err := read(&ty); err != nil {
			return nil, err
		}
		p.Type = PhotoType(ty)
		if err := read(&p.Size); err != nil {
			return nil, err
		}
		if err := read(&p.Upload); err != nil {
			return nil, err
		}
		t.Photos = append(t.Photos, p)
	}
	var nReqs uint64
	if err := read(&nReqs); err != nil {
		return nil, err
	}
	if nReqs > 1<<32 {
		return nil, fmt.Errorf("trace: implausible request count %d", nReqs)
	}
	for i := uint64(0); i < nReqs; i++ {
		var rq Request
		var term uint8
		if err := read(&rq.Time); err != nil {
			return nil, err
		}
		if err := read(&rq.Photo); err != nil {
			return nil, err
		}
		if err := read(&term); err != nil {
			return nil, err
		}
		rq.Terminal = Terminal(term)
		t.Requests = append(t.Requests, rq)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
