package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFrom hardens the binary trace parser against corrupt input:
// it must return an error or a structurally valid trace, never panic
// or allocate absurdly.
func FuzzReadFrom(f *testing.F) {
	// Seed with a valid trace and some mutations.
	tr := MustGenerate(DefaultConfig(1, 50))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0xe0, 0xac, 0xac, 0x0f, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must be structurally sound.
		if err := got.Validate(); err != nil {
			t.Fatalf("ReadFrom accepted an invalid trace: %v", err)
		}
	})
}

// FuzzImportCSV hardens the CSV importer the same way.
func FuzzImportCSV(f *testing.F) {
	tr := MustGenerate(DefaultConfig(2, 20))
	var buf bytes.Buffer
	if err := tr.ExportCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(strings.Join(csvHeader, ",") + "\n")
	f.Add("garbage")
	f.Add(strings.Join(csvHeader, ",") + "\n1,0,0,l5,10,0,pc,1,1,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ImportCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for i := range got.Requests {
			if int(got.Requests[i].Photo) >= len(got.Photos) {
				t.Fatalf("request %d references photo out of range", i)
			}
			if i > 0 && got.Requests[i].Time < got.Requests[i-1].Time {
				t.Fatal("importer accepted unsorted requests")
			}
		}
	})
}
