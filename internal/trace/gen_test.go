package trace

import (
	"math"
	"testing"
)

// testTrace generates a moderate trace once and shares it across tests.
var testTraceCache *Trace

func testTrace(t testing.TB) *Trace {
	if testTraceCache == nil {
		tr, err := Generate(DefaultConfig(1, 40000))
		if err != nil {
			t.Fatal(err)
		}
		testTraceCache = tr
	}
	return testTraceCache
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(7, 3000)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	for i := range a.Photos {
		if a.Photos[i] != b.Photos[i] {
			t.Fatalf("photo %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := MustGenerate(DefaultConfig(1, 2000))
	b := MustGenerate(DefaultConfig(2, 2000))
	same := 0
	n := len(a.Requests)
	if len(b.Requests) < n {
		n = len(b.Requests)
	}
	for i := 0; i < n; i++ {
		if a.Requests[i] == b.Requests[i] {
			same++
		}
	}
	if same > n/10 {
		t.Fatalf("different seeds produced %d/%d identical requests", same, n)
	}
}

func TestRequestsSortedAndInWindow(t *testing.T) {
	tr := testTrace(t)
	var prev int64 = -1
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Time < prev {
			t.Fatalf("requests not time-sorted at %d", i)
		}
		prev = r.Time
		if r.Time < 0 || r.Time >= tr.Horizon {
			t.Fatalf("request %d time %d outside [0,%d)", i, r.Time, tr.Horizon)
		}
		if int(r.Photo) >= len(tr.Photos) {
			t.Fatalf("request %d references photo %d out of range", i, r.Photo)
		}
	}
}

func TestEveryPhotoAccessed(t *testing.T) {
	tr := testTrace(t)
	seen := make([]bool, len(tr.Photos))
	for i := range tr.Requests {
		seen[tr.Requests[i].Photo] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("photo %d never accessed", i)
		}
	}
}

func TestOneTimeCalibration(t *testing.T) {
	s := Summarize(testTrace(t))
	if math.Abs(s.OneTimeObjectFraction-0.615) > 0.03 {
		t.Fatalf("one-time object fraction = %.3f, want 0.615±0.03", s.OneTimeObjectFraction)
	}
	if math.Abs(s.UniqueAccessShare-0.255) > 0.03 {
		t.Fatalf("unique-access share = %.3f, want 0.255±0.03", s.UniqueAccessShare)
	}
	if math.Abs(s.HitRateCap-0.745) > 0.03 {
		t.Fatalf("hit-rate cap = %.3f, want 0.745±0.03", s.HitRateCap)
	}
}

func TestTypeMixCalibration(t *testing.T) {
	s := Summarize(testTrace(t))
	l5 := s.TypeRequestShare[TypeL5]
	if l5 < 0.35 || l5 > 0.55 {
		t.Fatalf("l5 request share = %.3f, want ~0.45 (Figure 3)", l5)
	}
	// l5 must dominate all other types.
	for ty := 0; ty < NumPhotoTypes; ty++ {
		if PhotoType(ty) != TypeL5 && s.TypeRequestShare[ty] >= l5 {
			t.Fatalf("type %v share %.3f >= l5 share %.3f", PhotoType(ty), s.TypeRequestShare[ty], l5)
		}
	}
	sum := 0.0
	for _, v := range s.TypeRequestShare {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("type request shares sum to %v", sum)
	}
}

func TestDiurnalCycle(t *testing.T) {
	s := Summarize(testTrace(t))
	evening := s.HourlyRequests[19] + s.HourlyRequests[20] + s.HourlyRequests[21]
	morning := s.HourlyRequests[4] + s.HourlyRequests[5] + s.HourlyRequests[6]
	if evening <= morning*2 {
		t.Fatalf("evening load (%d) should far exceed early-morning load (%d)", evening, morning)
	}
	// Peak hour should be near 20:00.
	peak := 0
	for h := 1; h < 24; h++ {
		if s.HourlyRequests[h] > s.HourlyRequests[peak] {
			peak = h
		}
	}
	if peak < 18 || peak > 22 {
		t.Fatalf("peak hour = %d, want 18..22", peak)
	}
}

func TestOneTimeShareDiurnalPhase(t *testing.T) {
	// The one-time share p should be higher in the early morning than in
	// the evening peak (§4.4.3: p highest at 05:00, lowest at 20:00).
	s := Summarize(testTrace(t))
	if s.HourlyOneTimeShare[5] <= s.HourlyOneTimeShare[20] {
		t.Fatalf("one-time share at 05:00 (%.3f) should exceed 20:00 (%.3f)",
			s.HourlyOneTimeShare[5], s.HourlyOneTimeShare[20])
	}
}

func TestMobileShare(t *testing.T) {
	s := Summarize(testTrace(t))
	if math.Abs(s.MobileShare-0.7) > 0.02 {
		t.Fatalf("mobile share = %.3f, want 0.7±0.02", s.MobileShare)
	}
}

func TestOwnerFeaturesConsistent(t *testing.T) {
	tr := testTrace(t)
	views := make([]int64, len(tr.Owners))
	photos := make([]int32, len(tr.Owners))
	counts := make([]int64, len(tr.Photos))
	for i := range tr.Requests {
		counts[tr.Requests[i].Photo]++
	}
	for i := range tr.Photos {
		o := tr.Photos[i].Owner
		views[o] += counts[i]
		photos[o]++
	}
	for i := range tr.Owners {
		if tr.Owners[i].NumPhotos != photos[i] {
			t.Fatalf("owner %d NumPhotos = %d, recomputed %d", i, tr.Owners[i].NumPhotos, photos[i])
		}
		if photos[i] == 0 {
			continue
		}
		want := float64(views[i]) / float64(photos[i])
		if math.Abs(tr.Owners[i].AvgViews-want) > 1e-9 {
			t.Fatalf("owner %d AvgViews = %v, recomputed %v", i, tr.Owners[i].AvgViews, want)
		}
		if tr.Owners[i].ActiveFriends < 1 {
			t.Fatalf("owner %d has %d active friends, want >= 1", i, tr.Owners[i].ActiveFriends)
		}
	}
}

func TestPopularityCorrelatesWithOwnerViews(t *testing.T) {
	// Multi-access photos should have owners with systematically higher
	// AvgViews than one-time photos; this is the signal the classifier
	// learns from.
	tr := testTrace(t)
	counts := make([]int64, len(tr.Photos))
	for i := range tr.Requests {
		counts[tr.Requests[i].Photo]++
	}
	var oneSum, multiSum float64
	var oneN, multiN int
	for i := range tr.Photos {
		av := tr.Owners[tr.Photos[i].Owner].AvgViews
		if counts[i] == 1 {
			oneSum += av
			oneN++
		} else {
			multiSum += av
			multiN++
		}
	}
	oneMean, multiMean := oneSum/float64(oneN), multiSum/float64(multiN)
	if multiMean < oneMean*1.2 {
		t.Fatalf("owner AvgViews signal too weak: multi %v vs one-time %v", multiMean, oneMean)
	}
}

func TestPhotoSizesPositiveAndTyped(t *testing.T) {
	tr := testTrace(t)
	var meanL5, meanA5 float64
	var nL5, nA5 int
	for i := range tr.Photos {
		p := &tr.Photos[i]
		if p.Size < 1024 {
			t.Fatalf("photo %d size %d < 1KB", i, p.Size)
		}
		switch p.Type {
		case TypeL5:
			meanL5 += float64(p.Size)
			nL5++
		case TypeA5:
			meanA5 += float64(p.Size)
			nA5++
		}
	}
	if nL5 == 0 || nA5 == 0 {
		t.Fatal("expected both l5 and a5 photos")
	}
	if meanL5/float64(nL5) <= meanA5/float64(nA5) {
		t.Fatal("l5 photos should be larger than a5 photos on average")
	}
}

func TestValidateErrors(t *testing.T) {
	base := DefaultConfig(1, 100)
	mutations := []func(*Config){
		func(c *Config) { c.NumPhotos = 0 },
		func(c *Config) { c.NumOwners = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.PreDays = -1 },
		func(c *Config) { c.OneTimeFraction = 0 },
		func(c *Config) { c.OneTimeFraction = 1 },
		func(c *Config) { c.UniqueAccessShare = 0 },
		func(c *Config) { c.ParetoAlpha = 0 },
		func(c *Config) { c.MaxAccessesPerPhoto = 1 },
		func(c *Config) { c.MobileFraction = 1.5 },
		func(c *Config) { c.DiurnalAmplitude = 1 },
		func(c *Config) { c.AgeDecayDays = 0 },
		func(c *Config) { c.UniformAgeShare = -0.1 },
		func(c *Config) { c.FeatureNoise = -1 },
		func(c *Config) { c.TypePhotoShares = []float64{1} },
		func(c *Config) { c.TypePopBoost = []float64{1} },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSmallPopulations(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		cfg := DefaultConfig(3, n)
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(tr.Photos) != n {
			t.Fatalf("n=%d: got %d photos", n, len(tr.Photos))
		}
		if len(tr.Requests) < n {
			t.Fatalf("n=%d: only %d requests", n, len(tr.Requests))
		}
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		sec  int64
		want int
	}{{0, 0}, {3600, 1}, {86399, 23}, {86400, 0}, {-1, 23}, {-3600, 23}}
	for _, c := range cases {
		if got := HourOfDay(c.sec); got != c.want {
			t.Fatalf("HourOfDay(%d) = %d, want %d", c.sec, got, c.want)
		}
	}
}

func TestPhotoTypeStrings(t *testing.T) {
	if TypeL5.String() != "l5" || TypeA0.String() != "a0" {
		t.Fatal("photo type names wrong")
	}
	if TypeA0.Discretized() != 1 || TypeL5.Discretized() != 12 {
		t.Fatal("discretized values must be 1..12")
	}
	if PhotoType(77).String() == "" {
		t.Fatal("out-of-range type must still render")
	}
	if TerminalPC.String() != "pc" || TerminalMobile.String() != "mobile" {
		t.Fatal("terminal names wrong")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate with bad config did not panic")
		}
	}()
	MustGenerate(Config{})
}

func TestTruncExpBounds(t *testing.T) {
	rng := newTestRNG()
	for i := 0; i < 10000; i++ {
		x := truncExp(rng, 1000, 50, 500)
		if x < 50 || x >= 500 {
			t.Fatalf("truncExp out of [50,500): %v", x)
		}
	}
	if x := truncExp(rng, 100, 10, 10); x != 10 {
		t.Fatalf("degenerate interval: got %v", x)
	}
}

func TestDiurnalSampler(t *testing.T) {
	rng := newTestRNG()
	d := newDiurnal(0.55)
	var hours [24]int
	for i := 0; i < 200000; i++ {
		s := d.sample(rng)
		if s < 0 || s >= 86400 {
			t.Fatalf("sample out of range: %d", s)
		}
		hours[s/3600]++
	}
	if hours[20] <= hours[5]*2 {
		t.Fatalf("20:00 (%d) should dominate 05:00 (%d)", hours[20], hours[5])
	}
	// Zero amplitude must be uniform-ish.
	u := newDiurnal(0)
	var uh [24]int
	for i := 0; i < 240000; i++ {
		uh[u.sample(rng)/3600]++
	}
	for h, c := range uh {
		if math.Abs(float64(c)-10000) > 1000 {
			t.Fatalf("amplitude 0 hour %d count %d not uniform", h, c)
		}
	}
}

func TestBisect(t *testing.T) {
	root := bisect(func(x float64) float64 { return x - 3 }, -10, 10)
	if math.Abs(root-3) > 1e-9 {
		t.Fatalf("bisect root = %v", root)
	}
	// Out-of-bracket target returns the closest endpoint.
	if r := bisect(func(x float64) float64 { return x + 100 }, -10, 10); r != -10 {
		t.Fatalf("out-of-bracket low: %v", r)
	}
	if r := bisect(func(x float64) float64 { return x - 100 }, -10, 10); r != 10 {
		t.Fatalf("out-of-bracket high: %v", r)
	}
}

func TestCalibrationTargetsAreTunable(t *testing.T) {
	// The generator must hit overridden calibration targets, not only
	// the paper defaults.
	for _, tc := range []struct{ oneTime, unique float64 }{
		{0.40, 0.20},
		{0.80, 0.35},
	} {
		cfg := DefaultConfig(17, 15000)
		cfg.OneTimeFraction = tc.oneTime
		cfg.UniqueAccessShare = tc.unique
		s := Summarize(MustGenerate(cfg))
		if math.Abs(s.OneTimeObjectFraction-tc.oneTime) > 0.05 {
			t.Fatalf("one-time %.3f, want %.2f", s.OneTimeObjectFraction, tc.oneTime)
		}
		if math.Abs(s.UniqueAccessShare-tc.unique) > 0.05 {
			t.Fatalf("unique share %.3f, want %.2f", s.UniqueAccessShare, tc.unique)
		}
	}
}

func TestDiurnalAmplitudeZeroFlattens(t *testing.T) {
	cfg := DefaultConfig(19, 15000)
	cfg.DiurnalAmplitude = 0
	s := Summarize(MustGenerate(cfg))
	min, max := s.HourlyRequests[0], s.HourlyRequests[0]
	for _, c := range s.HourlyRequests {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) > 1.35*float64(min) {
		t.Fatalf("amplitude 0 should flatten hours: min %d max %d", min, max)
	}
}
