package trace

import (
	"testing"
	"testing/quick"

	"otacache/internal/stats"
)

func newTestRNG() *stats.RNG { return stats.NewRNG(12345) }

// tinyTrace builds a trace with an explicit photo sequence.
func tinyTrace(photos ...uint32) *Trace {
	maxP := uint32(0)
	for _, p := range photos {
		if p > maxP {
			maxP = p
		}
	}
	t := &Trace{
		Photos:  make([]Photo, maxP+1),
		Owners:  make([]Owner, 1),
		Horizon: int64(len(photos) + 1),
	}
	for i := range t.Photos {
		t.Photos[i].Size = 1
	}
	for i, p := range photos {
		t.Requests = append(t.Requests, Request{Time: int64(i), Photo: p})
	}
	return t
}

func TestBuildNextAccess(t *testing.T) {
	tr := tinyTrace(0, 1, 0, 2, 1, 0)
	next := BuildNextAccess(tr)
	want := []int{2, 4, 5, NoNext, NoNext, NoNext}
	for i, w := range want {
		if next[i] != w {
			t.Fatalf("next[%d] = %d, want %d", i, next[i], w)
		}
	}
}

func TestBuildPrevAccess(t *testing.T) {
	tr := tinyTrace(0, 1, 0, 2, 1, 0)
	prev := BuildPrevAccess(tr)
	want := []int{NoNext, NoNext, 0, NoNext, 1, 2}
	for i, w := range want {
		if prev[i] != w {
			t.Fatalf("prev[%d] = %d, want %d", i, prev[i], w)
		}
	}
}

func TestNextPrevInverse(t *testing.T) {
	tr := testTrace(t)
	next := BuildNextAccess(tr)
	prev := BuildPrevAccess(tr)
	for i, n := range next {
		if n != NoNext && prev[n] != i {
			t.Fatalf("prev[next[%d]=%d] = %d, want %d", i, n, prev[n], i)
		}
	}
	// Property: next[i] (if set) refers to the same photo, strictly later.
	for i, n := range next {
		if n == NoNext {
			continue
		}
		if n <= i {
			t.Fatalf("next[%d] = %d not strictly later", i, n)
		}
		if tr.Requests[n].Photo != tr.Requests[i].Photo {
			t.Fatalf("next[%d] crosses photos", i)
		}
	}
}

func TestNextAccessNoIntermediate(t *testing.T) {
	// Between i and next[i] the photo must not appear.
	tr := MustGenerate(DefaultConfig(5, 500))
	next := BuildNextAccess(tr)
	for i, n := range next {
		if n == NoNext {
			continue
		}
		for j := i + 1; j < n; j++ {
			if tr.Requests[j].Photo == tr.Requests[i].Photo {
				t.Fatalf("photo %d reappears at %d before next[%d]=%d", tr.Requests[i].Photo, j, i, n)
			}
		}
	}
}

func TestReaccessDistance(t *testing.T) {
	tr := tinyTrace(0, 1, 0)
	next := BuildNextAccess(tr)
	if d := ReaccessDistance(next, 0); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if d := ReaccessDistance(next, 1); d != -1 {
		t.Fatalf("distance for final access = %d, want -1", d)
	}
}

func TestOneTimeCountMatchesSummary(t *testing.T) {
	tr := testTrace(t)
	next := BuildNextAccess(tr)
	prev := BuildPrevAccess(tr)
	oneTime := 0
	for i := range tr.Requests {
		if next[i] == NoNext && prev[i] == NoNext {
			oneTime++
		}
	}
	s := Summarize(tr)
	if oneTime != s.OneTimeObjects {
		t.Fatalf("one-time via next/prev = %d, summary = %d", oneTime, s.OneTimeObjects)
	}
}

func TestSummaryEmptyTrace(t *testing.T) {
	s := Summarize(&Trace{})
	if s.NumPhotos != 0 || s.NumRequests != 0 || s.HitRateCap != 0 {
		t.Fatal("empty trace summary must be zeros")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize(tinyTrace(0, 1, 0))
	out := s.String()
	if len(out) == 0 {
		t.Fatal("empty summary string")
	}
}

// Property: BuildNextAccess matches a naive O(n^2) forward scan on
// arbitrary key sequences.
func TestBuildNextAccessMatchesNaive(t *testing.T) {
	check := func(seq []uint32) bool {
		tr := tinyTrace(seq...)
		next := BuildNextAccess(tr)
		for i := range seq {
			naive := NoNext
			for j := i + 1; j < len(seq); j++ {
				if seq[j] == seq[i] {
					naive = j
					break
				}
			}
			if next[i] != naive {
				return false
			}
		}
		return true
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]uint32, len(raw))
		for i, b := range raw {
			seq[i] = uint32(b % 10)
		}
		return check(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
