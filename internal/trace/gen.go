package trace

import (
	"math"
	"sort"

	"otacache/internal/stats"
)

// Generate synthesizes a trace from the configuration. It is
// deterministic in cfg.Seed.
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
	return g.run(), nil
}

// MustGenerate is Generate for tests and examples with known-good
// configurations; it panics on configuration errors.
func MustGenerate(cfg Config) *Trace {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

type generator struct {
	cfg Config
	rng *stats.RNG

	horizon int64

	ownerActivity []float64 // latent activity per owner
	latent        []float64 // latent popularity per photo
	counts        []int     // realized access count per photo
}

func (g *generator) run() *Trace {
	cfg := g.cfg
	g.horizon = int64(cfg.Days) * 86400

	t := &Trace{Horizon: g.horizon}
	g.makeOwners(t)
	g.makePhotos(t)
	g.assignCounts(t)
	g.emitRequests(t)
	g.finalizeOwnerFeatures(t)
	return t
}

// makeOwners draws the owner population with a lognormal latent activity
// level. ActiveFriends is observable and correlated with activity.
func (g *generator) makeOwners(t *Trace) {
	n := g.cfg.NumOwners
	t.Owners = make([]Owner, n)
	g.ownerActivity = make([]float64, n)
	rng := g.rng.Split()
	for i := range t.Owners {
		a := math.Exp(0.9 * rng.NormFloat64())
		g.ownerActivity[i] = a
		t.Owners[i].ActiveFriends = int32(rng.Poisson(4*a) + 1)
	}
}

// makePhotos draws the photo population: owner, type, size, upload time,
// and the latent popularity score that drives one-time-ness and access
// counts. The score mixes observable signals (owner activity, type,
// upload freshness) with unobservable noise (cfg.FeatureNoise), which is
// what bounds classifier accuracy below 1.
func (g *generator) makePhotos(t *Trace) {
	cfg := g.cfg
	shares := defaultTypePhotoShares[:]
	if cfg.TypePhotoShares != nil {
		shares = cfg.TypePhotoShares
	}
	boost := defaultTypePopBoost[:]
	if cfg.TypePopBoost != nil {
		boost = cfg.TypePopBoost
	}
	typeCDF := make([]float64, len(shares))
	sum := 0.0
	for i, s := range shares {
		sum += s
		typeCDF[i] = sum
	}
	for i := range typeCDF {
		typeCDF[i] /= sum
	}

	rng := g.rng.Split()
	t.Photos = make([]Photo, cfg.NumPhotos)
	g.latent = make([]float64, cfg.NumPhotos)
	uploadSpan := float64(int64(cfg.PreDays)*86400 + g.horizon)
	for i := range t.Photos {
		p := &t.Photos[i]
		p.Owner = uint32(rng.Intn(cfg.NumOwners))
		p.Type = PhotoType(sort.SearchFloat64s(typeCDF, rng.Float64()))
		p.Size = int64(float64(typeBaseSize[p.Type]) * math.Exp(0.45*rng.NormFloat64()))
		if p.Size < 1024 {
			p.Size = 1024
		}
		p.Upload = -int64(cfg.PreDays)*86400 + int64(rng.Float64()*uploadSpan)
		if p.Upload >= g.horizon {
			p.Upload = g.horizon - 1
		}

		// Freshness: photos uploaded long before the window skew cold.
		preAge := float64(maxI64(0, -p.Upload))
		fresh := math.Exp(-preAge / (5 * 86400))
		g.latent[i] = 0.9*math.Log(g.ownerActivity[p.Owner]) +
			boost[p.Type] +
			0.8*(fresh-0.5) +
			cfg.FeatureNoise*rng.NormFloat64()
	}
}

// assignCounts decides each photo's in-window access count so that the
// one-time object fraction and the unique-access share both hit their
// configured targets exactly in expectation.
func (g *generator) assignCounts(t *Trace) {
	cfg := g.cfg
	rng := g.rng.Split()
	n := len(t.Photos)
	g.counts = make([]int, n)

	// Calibrate the intercept a of P(one-time) = sigmoid(a - z) by
	// bisection so the mean one-time probability equals the target.
	a := bisect(func(a float64) float64 {
		s := 0.0
		for _, z := range g.latent {
			s += sigmoid(a - z)
		}
		return s/float64(n) - cfg.OneTimeFraction
	}, -40, 40)

	oneTime := 0
	multi := make([]int, 0, n)
	for i, z := range g.latent {
		if rng.Bernoulli(sigmoid(a - z)) {
			g.counts[i] = 1
			oneTime++
		} else {
			multi = append(multi, i)
		}
	}
	if len(multi) == 0 {
		return
	}

	// Draw heavy-tailed counts modulated by latent popularity, then
	// rescale so total accesses T satisfy N/T = UniqueAccessShare.
	var drawn float64
	raw := make([]float64, len(multi))
	for j, i := range multi {
		c := float64(stats.ParetoCount(rng, cfg.ParetoAlpha, 2, cfg.MaxAccessesPerPhoto))
		c *= math.Exp(0.45 * g.latent[i])
		if c < 2 {
			c = 2
		}
		raw[j] = c
		drawn += c
	}
	total := float64(n) / cfg.UniqueAccessShare
	wantMulti := total - float64(oneTime) - float64(len(multi))
	// Scale the counts-beyond-first so Σ(c_i) = wantMulti + len(multi),
	// keeping every multi photo at >= 2 accesses.
	excess := drawn - float64(len(multi))
	scale := 1.0
	if excess > 0 {
		scale = wantMulti / excess
	}
	for j, i := range multi {
		c := 1 + int(math.Round((raw[j]-1)*scale))
		if c < 2 {
			c = 2
		}
		if c > cfg.MaxAccessesPerPhoto {
			c = cfg.MaxAccessesPerPhoto
		}
		g.counts[i] = c
	}
}

// emitRequests places each photo's accesses in time: an age drawn from a
// truncated exponential/uniform mixture (recency bias), then the
// second-of-day redrawn from the diurnal profile. One-time photos use a
// flatter diurnal profile, which makes the one-time share p peak in the
// early morning and bottom in the evening as the paper observes
// (§4.4.3).
func (g *generator) emitRequests(t *Trace) {
	cfg := g.cfg
	rng := g.rng.Split()
	tau := cfg.AgeDecayDays * 86400

	multiDay := newDiurnal(cfg.DiurnalAmplitude)
	oneDay := newDiurnal(cfg.DiurnalAmplitude * 0.45)

	total := 0
	for _, c := range g.counts {
		total += c
	}
	t.Requests = make([]Request, 0, total)
	for i := range t.Photos {
		p := &t.Photos[i]
		lo := float64(maxI64(0, -p.Upload))
		hi := float64(g.horizon - p.Upload)
		day := multiDay
		if g.counts[i] == 1 {
			day = oneDay
		}
		for j := 0; j < g.counts[i]; j++ {
			var age float64
			if rng.Bernoulli(cfg.UniformAgeShare) {
				age = lo + rng.Float64()*(hi-lo)
			} else {
				age = truncExp(rng, tau, lo, hi)
			}
			at := p.Upload + int64(age)
			if at < 0 {
				at = 0
			}
			if at >= g.horizon {
				at = g.horizon - 1
			}
			// Replace the second-of-day with a diurnal draw, keeping the day.
			d := at / 86400
			at = d*86400 + day.sample(rng)
			if at >= g.horizon {
				at = g.horizon - 1
			}
			term := TerminalPC
			if rng.Bernoulli(cfg.MobileFraction) {
				term = TerminalMobile
			}
			t.Requests = append(t.Requests, Request{Time: at, Photo: uint32(i), Terminal: term})
		}
	}
	sort.Slice(t.Requests, func(a, b int) bool {
		ra, rb := &t.Requests[a], &t.Requests[b]
		if ra.Time != rb.Time {
			return ra.Time < rb.Time
		}
		return ra.Photo < rb.Photo
	})
}

// finalizeOwnerFeatures computes each owner's realized AvgViews (total
// views over photo count) and photo count, the social features the
// classifier consumes (§3.2.1).
func (g *generator) finalizeOwnerFeatures(t *Trace) {
	views := make([]int64, len(t.Owners))
	photos := make([]int32, len(t.Owners))
	for i := range t.Photos {
		o := t.Photos[i].Owner
		views[o] += int64(g.counts[i])
		photos[o]++
	}
	for i := range t.Owners {
		t.Owners[i].NumPhotos = photos[i]
		if photos[i] > 0 {
			t.Owners[i].AvgViews = float64(views[i]) / float64(photos[i])
		}
	}
}

// diurnal is a per-minute inverse-CDF sampler for second-of-day, built
// from an anchored intensity profile with its peak at 20:00 and trough
// around 05:00. amplitude=0 degrades to uniform.
type diurnal struct {
	cdf [1440]float64
}

// diurnalAnchors are (hour, relative intensity) control points; linear
// interpolation in between, wrapping at 24 h.
var diurnalAnchors = [][2]float64{
	{0, 0.95}, {2, 0.55}, {5, 0.30}, {7, 0.55}, {9, 0.95}, {12, 1.10},
	{14, 1.00}, {17, 1.20}, {20, 1.90}, {22, 1.55}, {24, 0.95},
}

func baseIntensity(hour float64) float64 {
	for i := 1; i < len(diurnalAnchors); i++ {
		if hour <= diurnalAnchors[i][0] {
			h0, v0 := diurnalAnchors[i-1][0], diurnalAnchors[i-1][1]
			h1, v1 := diurnalAnchors[i][0], diurnalAnchors[i][1]
			f := (hour - h0) / (h1 - h0)
			return v0 + f*(v1-v0)
		}
	}
	return diurnalAnchors[len(diurnalAnchors)-1][1]
}

func newDiurnal(amplitude float64) *diurnal {
	d := &diurnal{}
	var raw [1440]float64
	mean := 0.0
	for m := 0; m < 1440; m++ {
		raw[m] = baseIntensity(float64(m) / 60)
		mean += raw[m]
	}
	mean /= 1440
	cum := 0.0
	for m := 0; m < 1440; m++ {
		lambda := (1 - amplitude) + amplitude*raw[m]/mean
		cum += lambda
		d.cdf[m] = cum
	}
	for m := range d.cdf {
		d.cdf[m] /= cum
	}
	d.cdf[1439] = 1
	return d
}

// sample draws a second-of-day in [0, 86400).
func (d *diurnal) sample(rng *stats.RNG) int64 {
	u := rng.Float64()
	m := sort.SearchFloat64s(d.cdf[:], u)
	return int64(m)*60 + int64(rng.Intn(60))
}

// truncExp samples an exponential with mean tau truncated to [lo, hi).
func truncExp(rng *stats.RNG, tau, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	elo := math.Exp(-lo / tau)
	ehi := math.Exp(-hi / tau)
	u := rng.Float64()
	v := elo - u*(elo-ehi)
	if v <= 0 {
		return hi - 1
	}
	x := -tau * math.Log(v)
	if x < lo {
		x = lo
	}
	if x >= hi {
		x = math.Nextafter(hi, lo)
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// bisect finds a root of f on [lo, hi] assuming f is monotone
// increasing; it returns the midpoint after 80 halvings.
func bisect(f func(float64) float64, lo, hi float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo > 0 || fhi < 0 {
		// Target is outside the bracket; return the closer endpoint.
		if math.Abs(flo) < math.Abs(fhi) {
			return lo
		}
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
