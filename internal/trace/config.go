package trace

import "fmt"

// Config parameterizes the synthetic trace generator. DefaultConfig
// returns values calibrated to reproduce the workload statistics the
// paper reports for the QQPhoto trace (see package comment).
type Config struct {
	// Seed drives all randomness; equal seeds produce equal traces.
	Seed uint64

	// NumPhotos is the object population size.
	NumPhotos int
	// NumOwners is the owner population size.
	NumOwners int
	// Days is the observation-window length (the paper's log is 9 days).
	Days int
	// PreDays is how far before the window photos may have been uploaded.
	PreDays int

	// OneTimeFraction is the fraction of objects accessed exactly once
	// (the paper measures 61.5 %).
	OneTimeFraction float64
	// UniqueAccessShare is the fraction of accesses that are first
	// accesses to their object; an infinite cache's hit rate is capped at
	// 1-UniqueAccessShare (the paper measures ~25.5 %, capping hit rate
	// at 74.5 %).
	UniqueAccessShare float64

	// ParetoAlpha shapes the heavy tail of per-object access counts for
	// the multi-access population.
	ParetoAlpha float64
	// MaxAccessesPerPhoto bounds a single object's access count.
	MaxAccessesPerPhoto int

	// MobileFraction is the share of requests from mobile terminals.
	MobileFraction float64

	// DiurnalAmplitude in [0,1) scales the day/night request-rate swing;
	// 0 disables the diurnal cycle. The cycle peaks at 20:00 and bottoms
	// at 05:00 (§4.4.3).
	DiurnalAmplitude float64

	// AgeDecayDays is the mean of the exponential photo-age distribution
	// at access time: most requests target recently uploaded photos.
	AgeDecayDays float64
	// UniformAgeShare is the share of accesses whose age is drawn
	// uniformly over the photo's visible lifetime instead of from the
	// exponential, providing a long-tail of accesses to old photos.
	UniformAgeShare float64

	// FeatureNoise is the standard deviation of the latent-popularity
	// noise that is NOT observable through any feature. Larger values
	// lower the ceiling on classifier accuracy; the default is tuned so a
	// cost-sensitive CART lands near the paper's ~0.86 accuracy.
	FeatureNoise float64

	// TypePhotoShares gives the probability that a photo belongs to each
	// of the twelve types. Leave nil for the calibrated default, which
	// combined with TypePopBoost yields ~45 % of requests on type l5.
	TypePhotoShares []float64
	// TypePopBoost gives each type's additive boost to the latent
	// popularity score. Leave nil for the calibrated default.
	TypePopBoost []float64
}

// DefaultConfig returns the calibrated configuration at a given object
// scale. numPhotos of ~300000 yields roughly 1.2 M requests and a ~13 GB
// storage footprint, making the paper's 2–20 GB capacity sweep
// meaningful. Smaller populations scale everything down proportionally.
func DefaultConfig(seed uint64, numPhotos int) Config {
	return Config{
		Seed:                seed,
		NumPhotos:           numPhotos,
		NumOwners:           maxInt(1, numPhotos/6),
		Days:                9,
		PreDays:             30,
		OneTimeFraction:     0.615,
		UniqueAccessShare:   0.255,
		ParetoAlpha:         1.25,
		MaxAccessesPerPhoto: 2000,
		MobileFraction:      0.7,
		DiurnalAmplitude:    0.7,
		AgeDecayDays:        1.5,
		UniformAgeShare:     0.2,
		FeatureNoise:        0.85,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate reports the first configuration problem found, or nil.
func (c *Config) Validate() error {
	switch {
	case c.NumPhotos <= 0:
		return fmt.Errorf("trace: NumPhotos must be positive, got %d", c.NumPhotos)
	case c.NumOwners <= 0:
		return fmt.Errorf("trace: NumOwners must be positive, got %d", c.NumOwners)
	case c.Days <= 0:
		return fmt.Errorf("trace: Days must be positive, got %d", c.Days)
	case c.PreDays < 0:
		return fmt.Errorf("trace: PreDays must be non-negative, got %d", c.PreDays)
	case c.OneTimeFraction <= 0 || c.OneTimeFraction >= 1:
		return fmt.Errorf("trace: OneTimeFraction must be in (0,1), got %g", c.OneTimeFraction)
	case c.UniqueAccessShare <= 0 || c.UniqueAccessShare >= 1:
		return fmt.Errorf("trace: UniqueAccessShare must be in (0,1), got %g", c.UniqueAccessShare)
	case c.ParetoAlpha <= 0:
		return fmt.Errorf("trace: ParetoAlpha must be positive, got %g", c.ParetoAlpha)
	case c.MaxAccessesPerPhoto < 2:
		return fmt.Errorf("trace: MaxAccessesPerPhoto must be >= 2, got %d", c.MaxAccessesPerPhoto)
	case c.MobileFraction < 0 || c.MobileFraction > 1:
		return fmt.Errorf("trace: MobileFraction must be in [0,1], got %g", c.MobileFraction)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("trace: DiurnalAmplitude must be in [0,1), got %g", c.DiurnalAmplitude)
	case c.AgeDecayDays <= 0:
		return fmt.Errorf("trace: AgeDecayDays must be positive, got %g", c.AgeDecayDays)
	case c.UniformAgeShare < 0 || c.UniformAgeShare > 1:
		return fmt.Errorf("trace: UniformAgeShare must be in [0,1], got %g", c.UniformAgeShare)
	case c.FeatureNoise < 0:
		return fmt.Errorf("trace: FeatureNoise must be non-negative, got %g", c.FeatureNoise)
	}
	if c.TypePhotoShares != nil && len(c.TypePhotoShares) != NumPhotoTypes {
		return fmt.Errorf("trace: TypePhotoShares must have %d entries, got %d", NumPhotoTypes, len(c.TypePhotoShares))
	}
	if c.TypePopBoost != nil && len(c.TypePopBoost) != NumPhotoTypes {
		return fmt.Errorf("trace: TypePopBoost must have %d entries, got %d", NumPhotoTypes, len(c.TypePopBoost))
	}
	return nil
}

// defaultTypePhotoShares is the object-population share per type.
// Request shares differ because TypePopBoost skews popularity: together
// they put ~45 % of requests on l5, matching Figure 3.
var defaultTypePhotoShares = [NumPhotoTypes]float64{
	// a0   a5    b0    b5    c0    c5    m0    m5    o0    o5    l0    l5
	0.035, 0.07, 0.03, 0.06, 0.03, 0.07, 0.035, 0.13, 0.045, 0.09, 0.045, 0.36,
}

// defaultTypePopBoost is each type's additive latent-popularity boost.
var defaultTypePopBoost = [NumPhotoTypes]float64{
	// a0   a5    b0    b5    c0    c5    m0    m5    o0    o5    l0    l5
	-0.9, -0.5, -0.8, -0.4, -0.7, -0.2, -0.5, 0.25, -0.6, -0.1, -0.3, 0.55,
}

// typeBaseSize is the size scale per type in bytes: resolution drives
// size (a<b<c<m<l<o) and png (spec 0) runs larger than jpg (spec 5),
// matching the paper's observation that size correlates with resolution.
var typeBaseSize = [NumPhotoTypes]int64{
	// a0           a5          b0           b5          c0           c5
	6 * 1024, 4 * 1024, 12 * 1024, 8 * 1024, 24 * 1024, 16 * 1024,
	// m0           m5          o0            o5           l0           l5
	48 * 1024, 32 * 1024, 384 * 1024, 256 * 1024, 96 * 1024, 64 * 1024,
}
