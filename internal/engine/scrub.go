package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"otacache/internal/faults"
)

// Scrubber patrols the shards' flash stores in the background, one
// sealed segment per shard per interval, so latent media corruption
// (a bit rotting under a cold object) is found and dropped by the
// store's checksum pass before a client read ever sees it. Paired with
// the engine's degrade-to-miss read path it closes the fault domain:
// every corrupt extent is either scrubbed away or converted to a miss —
// never served.
//
// The cadence deliberately trickles: a full device pass takes
// (segments × interval) per shard, which is the standard patrol-read
// trade — steady verification load instead of read-burst interference
// with serving traffic.
type Scrubber struct {
	srv      Server
	interval time.Duration
	clock    faults.Clock

	segments atomic.Int64 // segments scanned by this scrubber
	dropped  atomic.Int64 // corrupt/unreadable extents dropped

	stop chan struct{}
	done chan struct{}
}

// NewScrubber builds a scrubber over srv's shards. interval is the
// per-step cadence (one segment per shard per step); clock supplies the
// sleep — the daemon passes faults.WallClock, tests either call Step
// directly or run the loop on a short real interval. A nil clock means
// WallClock. Note a FakeClock makes the loop spin (its Sleep returns
// immediately); fake-clock tests should drive Step themselves.
func NewScrubber(srv Server, interval time.Duration, clock faults.Clock) (*Scrubber, error) {
	if srv == nil {
		return nil, fmt.Errorf("engine: NewScrubber on nil server")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("engine: scrub interval must be positive (got %v)", interval)
	}
	if clock == nil {
		clock = faults.WallClock{}
	}
	return &Scrubber{
		srv:      srv,
		interval: interval,
		clock:    clock,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Step advances every shard's scrub cursor by one sealed segment,
// returning how many segments were scanned (shards with no flash store
// or nothing sealed contribute zero) and how many extents were dropped
// as unreadable or corrupt. Safe to call concurrently with traffic;
// no engine or policy lock is held while a store scrubs.
func (sc *Scrubber) Step() (segments, dropped int) {
	for _, sh := range sc.srv.Shards() {
		fs := sh.Flash()
		if fs == nil {
			continue
		}
		seg, _, drop := fs.ScrubStep()
		if seg < 0 {
			continue
		}
		segments++
		dropped += drop
	}
	sc.segments.Add(int64(segments))
	sc.dropped.Add(int64(dropped))
	return segments, dropped
}

// Segments returns how many segments this scrubber has scanned.
func (sc *Scrubber) Segments() int64 { return sc.segments.Load() }

// Dropped returns how many extents this scrubber's passes have dropped.
func (sc *Scrubber) Dropped() int64 { return sc.dropped.Load() }

// Start launches the background loop. Call at most once.
func (sc *Scrubber) Start() { go sc.run() }

// Stop signals the loop to exit. It does not wait out a sleep already
// in progress: the goroutine finishes its nap, observes the signal, and
// exits without another step — fine for daemon shutdown, where the
// process outlives the scrubber by milliseconds, and for tests, which
// use short intervals.
func (sc *Scrubber) Stop() { close(sc.stop) }

// Done is closed when the loop has exited.
func (sc *Scrubber) Done() <-chan struct{} { return sc.done }

func (sc *Scrubber) run() {
	defer close(sc.done)
	for {
		sc.clock.Sleep(sc.interval)
		select {
		case <-sc.stop:
			return
		default:
		}
		sc.Step()
	}
}
