package engine

import (
	"encoding/json"
	"reflect"
	"testing"

	"otacache/internal/flash"
)

// distinctMetrics fills every field of a Metrics with a distinct
// nonzero value derived from its index and a salt, via reflection, so
// the test keeps covering fields added after it was written.
func distinctMetrics(t *testing.T, salt int64) Metrics {
	t.Helper()
	var m Metrics
	v := reflect.ValueOf(&m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("Metrics.%s is %s; this test assumes int64 counters — extend it",
				v.Type().Field(i).Name, f.Kind())
		}
		f.SetInt(salt * int64(i+1))
	}
	return m
}

// TestMetricsSubCoversEveryField is the dynamic complement of the
// metricsync analyzer: Sub must subtract every counter, or interval
// metrics silently freeze for the forgotten field.
func TestMetricsSubCoversEveryField(t *testing.T) {
	cur := distinctMetrics(t, 1000)
	prev := distinctMetrics(t, 7)
	got := reflect.ValueOf(cur.Sub(prev))
	typ := got.Type()
	for i := 0; i < got.NumField(); i++ {
		want := 1000*int64(i+1) - 7*int64(i+1)
		if g := got.Field(i).Int(); g != want {
			t.Errorf("Sub dropped or miscomputed field %s: got %d, want %d",
				typ.Field(i).Name, g, want)
		}
	}
}

// TestMetricsAddCoversEveryField is Sub's mirror for the sharded
// aggregation path: Add must sum every counter, or ShardedEngine's
// Snapshot silently drops the forgotten field from every shard.
func TestMetricsAddCoversEveryField(t *testing.T) {
	a := distinctMetrics(t, 1000)
	b := distinctMetrics(t, 7)
	got := reflect.ValueOf(a.Add(b))
	typ := got.Type()
	for i := 0; i < got.NumField(); i++ {
		want := 1007 * int64(i+1)
		if g := got.Field(i).Int(); g != want {
			t.Errorf("Add dropped or miscomputed field %s: got %d, want %d",
				typ.Field(i).Name, g, want)
		}
	}
}

// TestMetricsJSONRoundTripsEveryField guards the /stats wire surface:
// every Metrics field must survive a JSON round trip, so an unexported
// or json:"-" field (invisible to scrapers) fails here.
func TestMetricsJSONRoundTripsEveryField(t *testing.T) {
	in := distinctMetrics(t, 13)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Metrics
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Errorf("Metrics JSON round trip lost fields:\n in: %+v\nout: %+v", in, out)
	}
	// Every field must also appear by name in the encoding — a rename
	// via a json tag would round-trip but break dashboards keyed on
	// the Go field names.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	typ := reflect.TypeOf(in)
	for i := 0; i < typ.NumField(); i++ {
		if _, ok := raw[typ.Field(i).Name]; !ok {
			t.Errorf("field %s missing from JSON encoding %s", typ.Field(i).Name, data)
		}
	}
}

// TestEngineSnapshotCoversEveryField loads counters through the
// engine's atomics and checks Snapshot surfaces each one: a counter
// added to Metrics but not to Snapshot would read zero forever.
func TestEngineSnapshotCoversEveryField(t *testing.T) {
	var e Engine
	e.requests.Store(1)
	e.hits.Store(2)
	e.hitBytes.Store(3)
	e.misses.Store(4)
	e.writes.Store(5)
	e.writeBytes.Store(6)
	e.bypassed.Store(7)
	e.rectified.Store(8)
	e.degraded.Store(9)
	e.totalBytes.Store(10)
	// The Flash* fields read through the attached store, not an atomic:
	// churn a small store until host, GC, and erase counters hold
	// distinct nonzero values (the write sequence is deterministic).
	fs, err := flash.New(flash.Config{SegmentSize: 256, Capacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(1)
	for round := 0; round < 120; round++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		fs.Write((rng>>33)%7, 64, nil)
	}
	e.SetFlash(fs)
	snap := e.Snapshot()
	v := reflect.ValueOf(snap)
	typ := v.Type()
	seen := make(map[int64]string, v.NumField())
	for i := 0; i < v.NumField(); i++ {
		g := v.Field(i).Int()
		if g == 0 {
			t.Errorf("Snapshot left field %s at zero; the live counter is never read", typ.Field(i).Name)
		}
		if prev, dup := seen[g]; dup {
			t.Errorf("fields %s and %s both read %d; a counter is wired to the wrong field", prev, typ.Field(i).Name, g)
		}
		seen[g] = typ.Field(i).Name
	}
}
