package engine

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"otacache/internal/flash"
)

// distinctMetrics fills every field of a Metrics with a distinct
// nonzero value derived from its index and a salt, via reflection, so
// the test keeps covering fields added after it was written.
func distinctMetrics(t *testing.T, salt int64) Metrics {
	t.Helper()
	var m Metrics
	v := reflect.ValueOf(&m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("Metrics.%s is %s; this test assumes int64 counters — extend it",
				v.Type().Field(i).Name, f.Kind())
		}
		f.SetInt(salt * int64(i+1))
	}
	return m
}

// TestMetricsSubCoversEveryField is the dynamic complement of the
// metricsync analyzer: Sub must subtract every counter, or interval
// metrics silently freeze for the forgotten field.
func TestMetricsSubCoversEveryField(t *testing.T) {
	cur := distinctMetrics(t, 1000)
	prev := distinctMetrics(t, 7)
	got := reflect.ValueOf(cur.Sub(prev))
	typ := got.Type()
	for i := 0; i < got.NumField(); i++ {
		want := 1000*int64(i+1) - 7*int64(i+1)
		if g := got.Field(i).Int(); g != want {
			t.Errorf("Sub dropped or miscomputed field %s: got %d, want %d",
				typ.Field(i).Name, g, want)
		}
	}
}

// TestMetricsAddCoversEveryField is Sub's mirror for the sharded
// aggregation path: Add must sum every counter, or ShardedEngine's
// Snapshot silently drops the forgotten field from every shard.
func TestMetricsAddCoversEveryField(t *testing.T) {
	a := distinctMetrics(t, 1000)
	b := distinctMetrics(t, 7)
	got := reflect.ValueOf(a.Add(b))
	typ := got.Type()
	for i := 0; i < got.NumField(); i++ {
		want := 1007 * int64(i+1)
		if g := got.Field(i).Int(); g != want {
			t.Errorf("Add dropped or miscomputed field %s: got %d, want %d",
				typ.Field(i).Name, g, want)
		}
	}
}

// TestMetricsJSONRoundTripsEveryField guards the /stats wire surface:
// every Metrics field must survive a JSON round trip, so an unexported
// or json:"-" field (invisible to scrapers) fails here.
func TestMetricsJSONRoundTripsEveryField(t *testing.T) {
	in := distinctMetrics(t, 13)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Metrics
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Errorf("Metrics JSON round trip lost fields:\n in: %+v\nout: %+v", in, out)
	}
	// Every field must also appear by name in the encoding — a rename
	// via a json tag would round-trip but break dashboards keyed on
	// the Go field names.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	typ := reflect.TypeOf(in)
	for i := 0; i < typ.NumField(); i++ {
		if _, ok := raw[typ.Field(i).Name]; !ok {
			t.Errorf("field %s missing from JSON encoding %s", typ.Field(i).Name, data)
		}
	}
}

// faultCountdownDev wraps a device with countdown fault knobs so the
// reflection tests can drive every flash counter nonzero: the next
// failReads reads error, the next corruptReads reads return flipped
// bytes (silent corruption for the checksum layer to catch), the next
// failPrograms programs error (each one retires a block).
type faultCountdownDev struct {
	inner        flash.Device
	failReads    int
	corruptReads int
	failPrograms int
}

func (d *faultCountdownDev) Read(seg int, off int64, p []byte) error {
	if d.failReads > 0 {
		d.failReads--
		return errors.New("test: injected uncorrectable read")
	}
	if err := d.inner.Read(seg, off, p); err != nil {
		return err
	}
	if d.corruptReads > 0 && len(p) > 0 {
		d.corruptReads--
		p[0] ^= 0xFF
	}
	return nil
}

func (d *faultCountdownDev) Program(seg int, off int64, p []byte) error {
	if d.failPrograms > 0 {
		d.failPrograms--
		return errors.New("test: injected program failure")
	}
	return d.inner.Program(seg, off, p)
}

func (d *faultCountdownDev) Erase(seg int) error { return d.inner.Erase(seg) }

// faultChurnedStore builds a store whose six mirrored counters (host,
// GC, erase wear; read-error, corrupt-extent, retired-block faults) are
// all nonzero: overwrite churn for the wear counters, then exactly
// corrupt injected corruptions, reads injected uncorrectable reads, and
// retires injected program failures. Each injected fault charges its
// counter exactly once, so the final values are corrupt, reads, and
// retires regardless of whether a direct read or a GC relocation
// consumed the fault.
func faultChurnedStore(t *testing.T, seed uint64, rounds, corrupt, reads, retires int) *flash.Store {
	t.Helper()
	dev := &faultCountdownDev{inner: flash.NewMemDevice(64)}
	fs, err := flash.New(flash.Config{SegmentSize: 128, Capacity: 8192, Device: dev, SpareBlocks: 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := seed
	for round := 0; round < rounds; round++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		// Small objects share segments, so collections find live
		// survivors to relocate (GCBytes must end nonzero).
		fs.Write((rng>>33)%150, 30, nil)
	}
	for i := 0; i < corrupt; i++ {
		key := uint64(100 + i)
		if err := fs.Write(key, 100, nil); err != nil {
			t.Fatalf("corrupt-phase write %d: %v", i, err)
		}
		dev.corruptReads = 1
		fs.ReadExtent(key)
		if dev.corruptReads != 0 {
			t.Fatalf("corrupt-phase read %d did not touch the device", i)
		}
	}
	for i := 0; i < reads; i++ {
		key := uint64(200 + i)
		if err := fs.Write(key, 100, nil); err != nil {
			t.Fatalf("read-fail-phase write %d: %v", i, err)
		}
		dev.failReads = 1
		fs.ReadExtent(key)
		dev.failReads = 0
	}
	dev.failPrograms = retires
	if err := fs.Write(300, 100, nil); err != nil {
		t.Fatalf("retire-phase write: %v", err)
	}
	st := fs.Stats()
	if st.HostBytes == 0 || st.GCBytes == 0 || st.Erases == 0 {
		t.Fatalf("churn left a wear counter zero: %+v", st)
	}
	if st.CorruptExtents != int64(corrupt) || st.ReadErrors != int64(reads) || st.RetiredBlocks != int64(retires) {
		t.Fatalf("fault counters off: corrupt %d (want %d), reads %d (want %d), retired %d (want %d)",
			st.CorruptExtents, corrupt, st.ReadErrors, reads, st.RetiredBlocks, retires)
	}
	return fs
}

// TestEngineSnapshotCoversEveryField loads counters through the
// engine's atomics and checks Snapshot surfaces each one: a counter
// added to Metrics but not to Snapshot would read zero forever.
func TestEngineSnapshotCoversEveryField(t *testing.T) {
	var e Engine
	e.requests.Store(1)
	e.hits.Store(2)
	e.hitBytes.Store(3)
	e.misses.Store(4)
	e.writes.Store(5)
	e.writeBytes.Store(6)
	e.bypassed.Store(7)
	e.rectified.Store(8)
	e.degraded.Store(9)
	e.totalBytes.Store(10)
	// The Flash* fields read through the attached store, not an atomic:
	// churn a small store (plus injected media faults) until all six
	// mirrored counters hold distinct nonzero values (the sequence is
	// deterministic).
	fs := faultChurnedStore(t, 1, 1500, 12, 11, 13)
	e.SetFlash(fs)
	snap := e.Snapshot()
	v := reflect.ValueOf(snap)
	typ := v.Type()
	seen := make(map[int64]string, v.NumField())
	for i := 0; i < v.NumField(); i++ {
		g := v.Field(i).Int()
		if g == 0 {
			t.Errorf("Snapshot left field %s at zero; the live counter is never read", typ.Field(i).Name)
		}
		if prev, dup := seen[g]; dup {
			t.Errorf("fields %s and %s both read %d; a counter is wired to the wrong field", prev, typ.Field(i).Name, g)
		}
		seen[g] = typ.Field(i).Name
	}
}
