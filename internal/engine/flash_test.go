package engine

import (
	"testing"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/flash"
)

func TestAttachFlashValidates(t *testing.T) {
	if err := AttachFlash(nil, 1024, 1.25); err == nil {
		t.Fatal("nil server accepted")
	}
	e, err := New(cache.NewLRU(1<<16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlash(e, 1024, 1.0); err == nil {
		t.Fatal("overprovision 1.0 accepted; the collector would have no slack")
	}
	if err := AttachFlash(e, 0, 1.25); err == nil {
		t.Fatal("zero segment size accepted")
	}
	if e.Flash() != nil {
		t.Fatal("failed attach left a store behind")
	}
	if err := AttachFlash(e, 1024, 1.25); err != nil {
		t.Fatal(err)
	}
	fs := e.Flash()
	if fs == nil {
		t.Fatal("no store attached")
	}
	// Capacity = policy cap x overprovision, rounded up to segments.
	if got, want := fs.Capacity(), int64(float64(1<<16)*1.25); got < want {
		t.Fatalf("flash capacity = %d, want >= %d", got, want)
	}
}

// TestOfferWritesToFlash pins the admission->device wiring: accepted
// admissions land in the store, bypassed ones do not, and the Flash*
// metrics mirror the store's counters.
func TestOfferWritesToFlash(t *testing.T) {
	e, err := New(cache.NewLRU(1<<16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlash(e, 4096, 1.25); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		e.Lookup(i, 100, e.NextTick(), nil)
	}
	m := e.Snapshot()
	if m.FlashHostBytes != m.WriteBytes || m.FlashHostBytes != 1000 {
		t.Fatalf("FlashHostBytes = %d, WriteBytes = %d; admitted bytes must land on the device", m.FlashHostBytes, m.WriteBytes)
	}
	if !e.Flash().Contains(3) {
		t.Fatal("admitted key missing from flash")
	}
	// A hit is not a device write.
	e.Lookup(3, 100, e.NextTick(), nil)
	if m := e.Snapshot(); m.FlashHostBytes != 1000 {
		t.Fatalf("hit charged the device: FlashHostBytes = %d", m.FlashHostBytes)
	}
}

// TestOfferBypassSkipsFlash drives a filter that rejects everything:
// the whole point of admission control is that bypassed objects never
// cost device writes.
func TestOfferBypassSkipsFlash(t *testing.T) {
	e, err := New(cache.NewLRU(1<<16), rejectAll{})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlash(e, 4096, 1.25); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		e.Lookup(i, 100, e.NextTick(), nil)
	}
	m := e.Snapshot()
	if m.Bypassed != 10 {
		t.Fatalf("Bypassed = %d, want 10", m.Bypassed)
	}
	if m.FlashHostBytes != 0 || e.Flash().Len() != 0 {
		t.Fatalf("bypassed objects reached the device: %+v", m)
	}
	if m.FlashWAF() != 1 {
		t.Fatalf("FlashWAF = %g on an unwritten device, want 1", m.FlashWAF())
	}
}

type rejectAll struct{}

func (rejectAll) Name() string { return "rejectall" }
func (rejectAll) Decide(key uint64, tick int, feat []float64) core.Decision {
	return core.Decision{}
}

// TestPolicyEvictionInvalidatesLazily pins the Live wiring built by
// AttachFlash: once the policy evicts a key, the collector discovers
// the extent dead and drops it instead of relocating it.
func TestPolicyEvictionInvalidatesLazily(t *testing.T) {
	// A tiny policy (2 x 100-byte residents) under heavy unique-key
	// traffic: nearly every admission evicts a predecessor.
	e, err := New(cache.NewLRU(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlash(e, 256, 4); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		e.Lookup(i, 100, e.NextTick(), nil)
	}
	m := e.Snapshot()
	if m.FlashHostBytes != 500*100 {
		t.Fatalf("FlashHostBytes = %d, want 50000", m.FlashHostBytes)
	}
	// Evicted extents are garbage, not survivors: amplification stays
	// near the floor even though the device saw 50x its capacity.
	if w := m.FlashWAF(); w > 1.2 {
		t.Fatalf("FlashWAF = %g; evicted extents must not relocate", w)
	}
	if got := e.Flash().Len(); got > e.Policy().Len()+cap500Slack {
		t.Fatalf("flash index holds %d extents, policy holds %d residents", got, e.Policy().Len())
	}
}

// cap500Slack bounds how many dead-but-undiscovered extents the lazy
// scheme may hold between collections (at most one segment's worth of
// 100-byte objects per sealed segment awaiting its turn).
const cap500Slack = 8

// TestRebuildFlash pins the restart path: Reset + Restore re-materialize
// exactly the policy's residents without charging host writes or erases.
func TestRebuildFlash(t *testing.T) {
	e, err := New(cache.NewLRU(1<<12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlash(e, 1024, 1.5); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		e.Lookup(i%40, 100, e.NextTick(), nil)
	}
	before := e.Snapshot()
	RebuildFlash(e)
	after := e.Snapshot()
	if after.FlashHostBytes != before.FlashHostBytes {
		t.Fatalf("rebuild charged host bytes: %d -> %d", before.FlashHostBytes, after.FlashHostBytes)
	}
	if after.FlashErases != before.FlashErases {
		t.Fatalf("rebuild charged erases: %d -> %d", before.FlashErases, after.FlashErases)
	}
	if got, want := e.Flash().Len(), e.Policy().Len(); got != want {
		t.Fatalf("rebuilt flash holds %d extents, policy holds %d residents", got, want)
	}
	// Rebuild is idempotent and survives a detached shard.
	RebuildFlash(e)
	var bare Engine
	RebuildFlash(&bare) // no store attached: must not panic
}

// TestShardedAttachFlash checks per-shard stores: each shard gets its
// own device sized off its own policy, and the sharded Snapshot sums
// their wear.
func TestShardedAttachFlash(t *testing.T) {
	se := newTestSharded(t, 3, 1<<14)
	if err := AttachFlash(se, 1024, 1.25); err != nil {
		t.Fatal(err)
	}
	stores := map[*flash.Store]bool{}
	for _, sh := range se.Shards() {
		fs := sh.Flash()
		if fs == nil {
			t.Fatal("shard missing its store")
		}
		stores[fs] = true
	}
	if len(stores) != 3 {
		t.Fatalf("%d distinct stores for 3 shards", len(stores))
	}
	for i := uint64(0); i < 300; i++ {
		se.Lookup(i, 64, se.NextTick(), nil)
	}
	var sum int64
	for _, sh := range se.Shards() {
		sum += sh.Snapshot().FlashHostBytes
	}
	if m := se.Snapshot(); m.FlashHostBytes != sum || sum == 0 {
		t.Fatalf("aggregate FlashHostBytes = %d, shard sum = %d", m.FlashHostBytes, sum)
	}
}
