package engine

import (
	"sync"
	"testing"
	"time"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/faults"
)

// bypassAll is a stand-in classifier that bypasses everything, the
// opposite of the admit-all fallback — so tests can tell from the
// decision alone which path served a request.
type bypassAll struct{}

func (bypassAll) Name() string { return "classifier" }
func (bypassAll) Decide(uint64, int, []float64) core.Decision {
	return core.Decision{Admit: false, PredictedOneTime: true}
}

func newBreaker(t *testing.T, primary core.Filter, cfg BreakerConfig) *Breaker {
	t.Helper()
	b, err := NewBreaker(primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBreakerTripsDegradesAndHeals walks the full state machine on a
// fake clock: consecutive failures open the breaker, open traffic
// degrades to the fallback without touching the primary, cooldown
// admits probes, and a healthy probe closes the circuit again.
func TestBreakerTripsDegradesAndHeals(t *testing.T) {
	clk := faults.NewFakeClock()
	inj := faults.NewInjector(faults.FailN(5, faults.Fault{Kind: faults.Error}), clk)
	primary := faults.WrapFilter(bypassAll{}, inj)
	b := newBreaker(t, primary, BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Now:              clk.Now,
	})

	if b.Name() != "faulty-classifier" {
		t.Fatalf("breaker must report the primary identity, got %q", b.Name())
	}

	// Three consecutive failures: each served degraded, then the trip.
	for i := 0; i < 3; i++ {
		d := b.Decide(uint64(i), i, nil)
		if !d.Degraded || !d.Admit {
			t.Fatalf("failure %d: decision %+v, want degraded admit-all", i, d)
		}
	}
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d after threshold failures, want open/1", b.State(), b.Opens())
	}

	// Open: traffic degrades without consuming primary calls.
	callsBefore := inj.Calls()
	for i := 0; i < 10; i++ {
		if d := b.Decide(100, 100+i, nil); !d.Degraded {
			t.Fatalf("open breaker served an undegraded decision: %+v", d)
		}
	}
	if inj.Calls() != callsBefore {
		t.Fatal("open breaker must not touch the primary")
	}

	// Cooldown elapses: the injected fault schedule still has 2 failing
	// calls, so the first two probes re-open the breaker.
	for probe := 0; probe < 2; probe++ {
		clk.Advance(time.Second)
		if d := b.Decide(200, 200+probe, nil); !d.Degraded {
			t.Fatalf("failing probe %d must degrade, got %+v", probe, d)
		}
		if b.State() != BreakerOpen {
			t.Fatalf("failed probe %d must re-open, state=%v", probe, b.State())
		}
	}

	// The primary has recovered: one healthy probe closes the circuit.
	clk.Advance(time.Second)
	d := b.Decide(300, 300, nil)
	if d.Degraded || d.Admit {
		t.Fatalf("healthy probe must serve the primary decision, got %+v", d)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after healthy probe, want closed", b.State())
	}
	if d := b.Decide(301, 301, nil); d.Degraded {
		t.Fatalf("closed breaker degraded a healthy call: %+v", d)
	}
	if b.Opens() != 3 || b.Failures() != 5 {
		t.Fatalf("opens=%d failures=%d, want 3/5", b.Opens(), b.Failures())
	}
	if b.LastError() == nil {
		t.Fatal("LastError must report the injected failure")
	}
}

// TestBreakerRecoversPanics pins that a panicking classifier never
// escapes Decide.
func TestBreakerRecoversPanics(t *testing.T) {
	inj := faults.NewInjector(faults.FailN(4, faults.Fault{Kind: faults.Panic}), nil)
	b := newBreaker(t, faults.WrapFilter(bypassAll{}, inj), BreakerConfig{FailureThreshold: 2})
	for i := 0; i < 4; i++ {
		d := b.Decide(uint64(i), i, nil) // must not panic
		if !d.Degraded {
			t.Fatalf("call %d: %+v, want degraded", i, d)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v, want open after panics", b.State())
	}
}

// TestBreakerLatencyBudget pins the third failure mode: a decision that
// overruns its budget (on the shared fake clock, so no real waiting) is
// discarded and the fallback serves the request.
func TestBreakerLatencyBudget(t *testing.T) {
	clk := faults.NewFakeClock()
	inj := faults.NewInjector(
		faults.FailN(2, faults.Fault{Kind: faults.Latency, Delay: 50 * time.Millisecond}), clk)
	b := newBreaker(t, faults.WrapFilter(bypassAll{}, inj), BreakerConfig{
		LatencyBudget:    10 * time.Millisecond,
		FailureThreshold: 2,
		Now:              clk.Now,
	})
	for i := 0; i < 2; i++ {
		if d := b.Decide(uint64(i), i, nil); !d.Degraded {
			t.Fatalf("over-budget call %d served undegraded: %+v", i, d)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v, want open after over-budget decisions", b.State())
	}
	// Heal: in-budget decisions close the breaker again.
	clk.Advance(time.Second)
	if d := b.Decide(9, 9, nil); d.Degraded {
		t.Fatalf("in-budget probe degraded: %+v", d)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

// TestBreakerCustomFallback checks the doorkeeper-style fallback is
// consulted (not admit-all) while degraded.
func TestBreakerCustomFallback(t *testing.T) {
	dk, err := core.NewFrequencyAdmission(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Always(faults.Fault{Kind: faults.Error}), nil)
	b := newBreaker(t, faults.WrapFilter(bypassAll{}, inj), BreakerConfig{
		Fallback:         dk,
		FailureThreshold: 1,
	})
	// A doorkeeper bypasses first sight and admits on re-access.
	if d := b.Decide(7, 0, nil); d.Admit || !d.Degraded {
		t.Fatalf("first sight through doorkeeper fallback: %+v", d)
	}
	if d := b.Decide(7, 1, nil); !d.Admit || !d.Degraded {
		t.Fatalf("re-access through doorkeeper fallback: %+v", d)
	}
}

// TestEngineBreakerUnderRace drives a full engine whose classifier
// randomly errors and panics from many goroutines: no panic escapes,
// every request is decided, and the engine's Degraded counter accounts
// exactly for the fallback decisions.
func TestEngineBreakerUnderRace(t *testing.T) {
	policy, err := cache.NewSharded(1<<20, 8, func(c int64) cache.Policy { return cache.NewLRU(c) })
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.Seeded(7, 0.2, faults.Fault{Kind: faults.Error})
	// Mix in panics on a coarser deterministic grid.
	mixed := faults.NewInjector(scheduleMix{sched}, nil)
	b, err := NewBreaker(faults.WrapFilter(bypassAll{}, mixed), BreakerConfig{
		FailureThreshold: 5,
		Cooldown:         time.Microsecond, // heals immediately under load
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(policy, b)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i)
				eng.Lookup(key, 256, eng.NextTick(), nil)
			}
		}(w)
	}
	wg.Wait()

	m := eng.Snapshot()
	if m.Requests != workers*perWorker {
		t.Fatalf("requests=%d, want %d", m.Requests, workers*perWorker)
	}
	if m.Degraded == 0 {
		t.Fatal("expected degraded decisions under injected faults")
	}
	if m.Degraded > m.Misses {
		t.Fatalf("degraded=%d exceeds misses=%d", m.Degraded, m.Misses)
	}
	if b.Failures() == 0 {
		t.Fatal("expected primary failures")
	}
}

// scheduleMix layers an every-97th panic over a base schedule.
type scheduleMix struct{ base faults.Schedule }

func (s scheduleMix) Nth(n uint64) faults.Fault {
	if (n+1)%97 == 0 {
		return faults.Fault{Kind: faults.Panic}
	}
	return s.base.Nth(n)
}
