package engine

import (
	"testing"

	"otacache/internal/cache"
)

// TestMetricsSub pins the interval-delta arithmetic /stats and the load
// generator rely on: driving an engine in two windows and subtracting
// the surrounding snapshots must yield exactly the second window's
// counters.
func TestMetricsSub(t *testing.T) {
	a := Metrics{Requests: 10, Hits: 4, HitBytes: 400, Misses: 6, Writes: 5, WriteBytes: 500, Bypassed: 1, Rectified: 1, TotalBytes: 1000}
	b := Metrics{Requests: 25, Hits: 13, HitBytes: 1300, Misses: 12, Writes: 8, WriteBytes: 800, Bypassed: 4, Rectified: 2, TotalBytes: 2500}
	d := b.Sub(a)
	want := Metrics{Requests: 15, Hits: 9, HitBytes: 900, Misses: 6, Writes: 3, WriteBytes: 300, Bypassed: 3, Rectified: 1, TotalBytes: 1500}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if got := d.HitRate(); got != 9.0/15.0 {
		t.Fatalf("interval HitRate = %v, want %v", got, 9.0/15.0)
	}
	if got := d.WriteRate(); got != 3.0/15.0 {
		t.Fatalf("interval WriteRate = %v, want %v", got, 3.0/15.0)
	}

	// Sub against the zero value is the identity, and subtracting a
	// snapshot from itself is zero — the two ends /stats exercises.
	if b.Sub(Metrics{}) != b {
		t.Fatal("Sub(zero) must be the identity")
	}
	if (b.Sub(b) != Metrics{}) {
		t.Fatal("Sub(self) must be zero")
	}
}

// TestMetricsSubTracksEngine drives a real engine in two windows and
// checks the snapshot difference equals the second window alone.
func TestMetricsSubTracksEngine(t *testing.T) {
	eng, err := New(cache.NewLRU(600), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		eng.Lookup(uint64(i%10), 100, eng.NextTick(), nil)
	}
	mid := eng.Snapshot()
	for i := 0; i < 50; i++ {
		eng.Lookup(uint64(i%10), 100, eng.NextTick(), nil)
	}
	d := eng.Snapshot().Sub(mid)
	if d.Requests != 50 {
		t.Fatalf("interval requests = %d, want 50", d.Requests)
	}
	if d.TotalBytes != 5000 {
		t.Fatalf("interval bytes = %d, want 5000", d.TotalBytes)
	}
	if d.Hits+d.Misses != d.Requests {
		t.Fatalf("interval hits %d + misses %d != requests %d", d.Hits, d.Misses, d.Requests)
	}
}
