package engine

import (
	"reflect"
	"sync"
	"testing"

	"otacache/internal/cache"
)

// newTestSharded builds an n-shard engine over admit-all LRUs, each
// shard with its own perShard-byte thread-safe policy (concurrent use
// requires every shard engine to be concurrency-safe, as in the
// daemon's composition).
func newTestSharded(t *testing.T, n int, perShard int64) *ShardedEngine {
	t.Helper()
	shards := make([]*Engine, n)
	for i := range shards {
		policy, err := cache.NewSharded(perShard, 1, func(c int64) cache.Policy { return cache.NewLRU(c) })
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = eng
	}
	se, err := NewShardedEngine(shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestNewShardedEngineValidation(t *testing.T) {
	if _, err := NewShardedEngine(nil, 1); err == nil {
		t.Fatal("empty shard list must error")
	}
	eng, err := New(cache.NewLRU(1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedEngine([]*Engine{eng, nil}, 1); err == nil {
		t.Fatal("nil shard must error")
	}
}

// TestShardedEngineRouting pins the routing contract: ShardFor is
// deterministic, Lookup lands on exactly the shard ShardFor names, and
// a realistic key space spreads over every shard.
func TestShardedEngineRouting(t *testing.T) {
	se := newTestSharded(t, 4, 1<<20)
	used := make([]int, 4)
	for key := uint64(0); key < 4096; key++ {
		dest := se.ShardFor(key)
		if dest < 0 || dest >= 4 {
			t.Fatalf("ShardFor(%d) = %d, out of range", key, dest)
		}
		if again := se.ShardFor(key); again != dest {
			t.Fatalf("ShardFor(%d) unstable: %d then %d", key, dest, again)
		}
		se.Lookup(key, 64, se.NextTick(), nil)
		for i, sh := range se.Shards() {
			if sh.Policy().Contains(key) != (i == dest) {
				t.Fatalf("key %d routed to shard %d, found on shard %d", key, dest, i)
			}
		}
		used[dest]++
	}
	for i, n := range used {
		if n == 0 {
			t.Fatalf("shard %d received no keys out of 4096", i)
		}
	}
}

// TestShardedEngineGlobalTick pins the one-counter contract: ticks are
// unique across shards and ResumeTick fast-forwards the shared stream.
func TestShardedEngineGlobalTick(t *testing.T) {
	se := newTestSharded(t, 3, 1<<20)
	for i := 0; i < 10; i++ {
		if got := se.NextTick(); got != i {
			t.Fatalf("tick %d, want %d", got, i)
		}
	}
	if se.Tick() != 10 {
		t.Fatalf("Tick() = %d, want 10", se.Tick())
	}
	se.ResumeTick(1000)
	if got := se.NextTick(); got != 1000 {
		t.Fatalf("resumed tick %d, want 1000", got)
	}
	// Per-shard engines must not have been handing out ticks of their
	// own: the shard counters stay untouched by routed traffic.
	se.Lookup(42, 64, se.NextTick(), nil)
	for i, sh := range se.Shards() {
		if sh.Tick() != 0 {
			t.Fatalf("shard %d grew a private tick counter (%d)", i, sh.Tick())
		}
	}
}

// TestShardedEngineOneShardMatchesEngine is the golden-equivalence
// anchor: a one-shard ShardedEngine must reproduce a bare Engine's
// outcomes and counters exactly, request for request.
func TestShardedEngineOneShardMatchesEngine(t *testing.T) {
	bare, err := New(cache.NewLRU(1<<12), oddBypass{})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := New(cache.NewLRU(1<<12), oddBypass{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine([]*Engine{inner}, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		key := uint64(i*i%257 + i%17)
		size := int64(32 + key%128)
		a := bare.Lookup(key, size, bare.NextTick(), nil)
		b := se.Lookup(key, size, se.NextTick(), nil)
		if a != b {
			t.Fatalf("request %d diverged: bare %+v, sharded %+v", i, a, b)
		}
	}
	if am, bm := bare.Snapshot(), se.Snapshot(); am != bm {
		t.Fatalf("counters diverged:\n  bare: %+v\nsharded: %+v", am, bm)
	}
	if se.ShardFor(12345) != 0 {
		t.Fatal("one-shard engine must own every key")
	}
}

// TestShardForOneShardFastPath is the regression guard for the route
// ShardFor takes when the ring shrinks to one shard: the fast path must
// return shard 0 for every key — bit-identical to what the ring walk
// would say and to a bare Engine — because snapshots written by an
// N-shard fleet rehome every record through the target's ShardFor on
// restore, and a stray nonzero route would panic the resharding.
func TestShardForOneShardFastPath(t *testing.T) {
	inner, err := New(cache.NewLRU(1<<10), nil)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine([]*Engine{inner}, 7)
	if err != nil {
		t.Fatal(err)
	}
	bare := inner
	rng := uint64(1)
	for i := 0; i < 50000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		key := rng
		if se.ShardFor(key) != 0 {
			t.Fatalf("one-shard ShardFor(%d) != 0", key)
		}
		if se.ShardFor(key) != bare.ShardFor(key) {
			t.Fatalf("one-shard ShardFor(%d) diverged from bare Engine", key)
		}
	}
}

// TestShardedEngineSnapshotSumsEveryField loads distinct values into
// every shard's atomic counters and checks, by reflection over the
// Metrics fields, that the sharded Snapshot is the exact field-wise sum
// of the shard snapshots — so a counter added to Metrics but skipped by
// Add can never ship.
func TestShardedEngineSnapshotSumsEveryField(t *testing.T) {
	se := newTestSharded(t, 3, 1<<20)
	for si, sh := range se.Shards() {
		salt := int64(si+1) * 1000
		sh.requests.Store(salt + 1)
		sh.hits.Store(salt + 2)
		sh.hitBytes.Store(salt + 3)
		sh.misses.Store(salt + 4)
		sh.writes.Store(salt + 5)
		sh.writeBytes.Store(salt + 6)
		sh.bypassed.Store(salt + 7)
		sh.rectified.Store(salt + 8)
		sh.degraded.Store(salt + 9)
		sh.totalBytes.Store(salt + 10)
		// The Flash* fields mirror an attached store's wear and fault
		// counters, so they cannot be Store()d directly: give each shard
		// a small store and churn it — with injected media faults —
		// until all six mirrored counters are nonzero (distinct per-shard
		// round and fault counts).
		sh.SetFlash(faultChurnedStore(t, uint64(si+1), 1500+100*si, 3+si, 2+si, 4+si))
	}
	var want Metrics
	wv := reflect.ValueOf(&want).Elem()
	for _, sh := range se.Shards() {
		sv := reflect.ValueOf(sh.Snapshot())
		for i := 0; i < sv.NumField(); i++ {
			wv.Field(i).SetInt(wv.Field(i).Int() + sv.Field(i).Int())
		}
	}
	got := se.Snapshot()
	if got != want {
		t.Fatalf("Snapshot is not the field-wise shard sum:\n got: %+v\nwant: %+v", got, want)
	}
	gv := reflect.ValueOf(got)
	for i := 0; i < gv.NumField(); i++ {
		if gv.Field(i).Int() == 0 {
			t.Fatalf("field %s summed to zero; a counter is not aggregated",
				gv.Type().Field(i).Name)
		}
	}
}

// TestShardedEngineConcurrentStress hammers a 4-shard engine from many
// goroutines; under -race this is the ShardedEngine thread-safety
// proof, and the exact request count catches lost routing.
func TestShardedEngineConcurrentStress(t *testing.T) {
	se := newTestSharded(t, 4, 1<<16)
	const goroutines, opsPer = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := uint64((g*opsPer + i) % 1024)
				se.Lookup(key, int64(1+key%64), se.NextTick(), nil)
				if i%512 == 0 {
					_ = se.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	m := se.Snapshot()
	if total := int64(goroutines * opsPer); m.Requests != total {
		t.Fatalf("requests = %d, want %d", m.Requests, total)
	}
	if m.Hits+m.Misses != m.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", m.Hits, m.Misses, m.Requests)
	}
	if se.Tick() != int64(goroutines*opsPer) {
		t.Fatalf("global tick = %d, want %d", se.Tick(), goroutines*opsPer)
	}
}
