package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"otacache/internal/core"
	"otacache/internal/obs"
)

// BreakerState is the circuit breaker's serving mode.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed serves every decision from the primary filter.
	BreakerClosed BreakerState = iota
	// BreakerOpen serves every decision from the fallback until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets one probe at a time through to the primary;
	// everything else stays on the fallback until the probes succeed.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the admission circuit breaker.
type BreakerConfig struct {
	// Fallback serves decisions while the primary is unavailable
	// (nil = core.AdmitAll, the pre-classifier "Original" behaviour; a
	// core.FrequencyAdmission doorkeeper is the other sensible choice).
	// It must be safe for concurrent use and must not fail.
	Fallback core.Filter
	// LatencyBudget fails a primary decision that takes longer than
	// this (0 = no budget). An over-budget decision is discarded and
	// the fallback serves that request.
	LatencyBudget time.Duration
	// FailureThreshold is how many consecutive primary failures open
	// the breaker (0 = 3).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a
	// probe through (0 = 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again (0 = 1).
	HalfOpenProbes int
	// Now is the clock (nil = time.Now); tests inject a fake clock so
	// cooldown and latency-budget behaviour need no real sleeping.
	Now func() time.Time
}

func (c *BreakerConfig) normalize() {
	if c.Fallback == nil {
		c.Fallback = core.AdmitAll{}
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		//lint:allow detclock real-clock default of the injectable Now seam
		c.Now = time.Now
	}
}

// Breaker is a circuit breaker around an admission filter: the
// graceful-degradation layer between the engine and the classifier.
// A classifier that panics, returns errors (via core.FallibleFilter),
// or overruns its latency budget must never take object serving down
// with it — the affected request (and, once the breaker opens, all
// requests until the primary heals) is decided by a cheap fallback
// filter instead, marked Decision.Degraded so the engine counts it.
//
// State machine: consecutive primary failures >= FailureThreshold trip
// Closed -> Open. After Cooldown, the next request transitions to
// HalfOpen and becomes a probe against the primary; HalfOpenProbes
// consecutive probe successes close the breaker, any probe failure
// reopens it for another cooldown. While a probe is in flight the
// remaining traffic keeps degrading to the fallback, so one stuck
// probe cannot stall serving.
//
// Breaker implements core.Filter and is safe for concurrent use when
// its primary and fallback are. Name returns the primary's name, so
// clients keyed on the filter identity (otaload's feature
// auto-detection) behave the same with or without the breaker.
type Breaker struct {
	primary  core.Filter
	fallible core.FallibleFilter // non-nil when primary reports errors
	cfg      BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int  // consecutive failures while closed
	successes int  // consecutive probe successes while half-open
	probing   bool // a half-open probe is in flight
	openedAt  time.Time

	opens    atomic.Int64
	failures atomic.Int64
	lastErr  atomic.Value // error

	// hist, when attached, observes every primary decision's latency —
	// the classifier inference time the paper's latency model assumes
	// constant, measured live. Atomic because SetHistogram may race
	// serving traffic.
	hist atomic.Pointer[obs.Histogram]
}

// NewBreaker wraps primary. See BreakerConfig for the knobs.
func NewBreaker(primary core.Filter, cfg BreakerConfig) (*Breaker, error) {
	if primary == nil {
		return nil, fmt.Errorf("engine: breaker needs a primary filter")
	}
	cfg.normalize()
	b := &Breaker{primary: primary, cfg: cfg}
	b.fallible, _ = primary.(core.FallibleFilter)
	return b, nil
}

// Name implements core.Filter, reporting the primary's identity.
func (b *Breaker) Name() string { return b.primary.Name() }

// Primary returns the wrapped filter (for admin endpoints that need
// the concrete admission system, e.g. classifier hot-swap).
func (b *Breaker) Primary() core.Filter { return b.primary }

// Fallback returns the degraded-mode filter.
func (b *Breaker) Fallback() core.Filter { return b.cfg.Fallback }

// State returns the current serving mode.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// Failures returns how many primary decisions have failed.
func (b *Breaker) Failures() int64 { return b.failures.Load() }

// SetHistogram attaches (or, with nil, detaches) a latency histogram
// observing primary decisions. The Breaker already reads its clock on
// entry to every primary call for the latency budget, so attaching a
// histogram adds at most one extra clock read per decision.
func (b *Breaker) SetHistogram(h *obs.Histogram) { b.hist.Store(h) }

// LastError returns the most recent primary failure (nil if none).
func (b *Breaker) LastError() error {
	if err, ok := b.lastErr.Load().(error); ok {
		return err
	}
	return nil
}

// Decide implements core.Filter.
func (b *Breaker) Decide(key uint64, tick int, feat []float64) core.Decision {
	if !b.tryPrimary() {
		return b.degrade(key, tick, feat)
	}
	d, err := b.callPrimary(key, tick, feat)
	if err != nil {
		b.failures.Add(1)
		b.lastErr.Store(err)
		b.onFailure()
		return b.degrade(key, tick, feat)
	}
	b.onSuccess()
	return d
}

// degrade serves one decision from the fallback, marked Degraded.
func (b *Breaker) degrade(key uint64, tick int, feat []float64) core.Decision {
	d := b.cfg.Fallback.Decide(key, tick, feat)
	d.Degraded = true
	return d
}

// tryPrimary decides whether this request may consult the primary,
// advancing Open -> HalfOpen when the cooldown has elapsed.
func (b *Breaker) tryPrimary() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// callPrimary runs one primary decision with panic recovery, the error
// channel, and the latency budget.
func (b *Breaker) callPrimary(key uint64, tick int, feat []float64) (d core.Decision, err error) {
	start := b.cfg.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("admission filter panic: %v", r)
		}
	}()
	if b.fallible != nil {
		d, err = b.fallible.DecideErr(key, tick, feat)
	} else {
		d = b.primary.Decide(key, tick, feat)
	}
	h := b.hist.Load()
	if h != nil || (err == nil && b.cfg.LatencyBudget > 0) {
		elapsed := b.cfg.Now().Sub(start)
		if h != nil {
			h.Record(int64(elapsed))
		}
		if err == nil && b.cfg.LatencyBudget > 0 && elapsed > b.cfg.LatencyBudget {
			err = fmt.Errorf("admission decision took %v, budget %v", elapsed, b.cfg.LatencyBudget)
		}
	}
	return d, err
}

// onSuccess records a healthy primary decision.
func (b *Breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.fails = 0
		}
	}
}

// onFailure records a failed primary decision, tripping or re-opening
// the breaker as the state machine dictates.
func (b *Breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		b.trip()
	case BreakerOpen:
		// A straggler that drew primary access before the trip; the
		// breaker is already open.
	}
}

// trip opens the breaker (mu held).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.opens.Add(1)
}

var _ core.Filter = (*Breaker)(nil)
