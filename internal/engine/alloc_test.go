package engine

import (
	"testing"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/faults"
)

// TestHotPathAllocs is the dynamic half of the hotalloc analyzer's
// contract: the checked-in hotalloc.baseline pins the serving hot path
// at zero escape sites statically, and this test pins it at zero
// allocations per operation at runtime. If either side drifts — a new
// allocation on Lookup, or a baseline edit that quietly blesses one —
// one of the two fails.
func TestHotPathAllocs(t *testing.T) {
	newShard := func() *Engine {
		policy, err := cache.NewSharded(1<<20, 4, func(c int64) cache.Policy {
			return cache.NewLRU(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(policy, core.AdmitAll{})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	const (
		key  = uint64(0xfeedbeef)
		size = int64(4096)
	)

	t.Run("EngineLookupHit", func(t *testing.T) {
		eng := newShard()
		if out := eng.Lookup(key, size, eng.NextTick(), nil); !out.Written {
			t.Fatalf("seeding Offer not admitted: %+v", out)
		}
		tick := eng.NextTick()
		if !eng.Get(key, size, tick) {
			t.Fatal("seeded key not resident")
		}
		if n := testing.AllocsPerRun(200, func() {
			if out := eng.Lookup(key, size, tick, nil); !out.Hit {
				t.Fatal("hit path missed")
			}
		}); n != 0 {
			t.Errorf("Engine.Lookup hit path allocates %.1f/op, baseline pins 0", n)
		}
	})

	t.Run("EngineLookupHitInstrumented", func(t *testing.T) {
		// The instrumented path — sampler hit, two clock reads, one
		// histogram record on every call (SampleEvery 1 forces the worst
		// case) — must stay as allocation-free as the bare one: the whole
		// point of the obs record path.
		eng := newShard()
		eng.SetInstruments(NewInstruments(faults.NewFakeClock(), 1))
		if out := eng.Lookup(key, size, eng.NextTick(), nil); !out.Written {
			t.Fatalf("seeding Offer not admitted: %+v", out)
		}
		tick := eng.NextTick()
		if n := testing.AllocsPerRun(200, func() {
			if out := eng.Lookup(key, size, tick, nil); !out.Hit {
				t.Fatal("hit path missed")
			}
		}); n != 0 {
			t.Errorf("instrumented Engine.Lookup hit path allocates %.1f/op, baseline pins 0", n)
		}
		if s := eng.Instruments().Lookup.Snapshot(); s.Count < 200 {
			t.Errorf("instrumentation recorded %d lookups, want >= 200 (sampling must have fired)", s.Count)
		}
	})

	t.Run("ShardedLookupHit", func(t *testing.T) {
		shards := make([]*Engine, 4)
		for i := range shards {
			shards[i] = newShard()
		}
		srv, err := NewShardedEngine(shards, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out := srv.Lookup(key, size, srv.NextTick(), nil); !out.Written {
			t.Fatalf("seeding Offer not admitted: %+v", out)
		}
		tick := srv.NextTick()
		// Routes through Ring.Server on every call: the multi-shard
		// composition covers internal/cluster's pinned hot function too.
		if n := testing.AllocsPerRun(200, func() {
			if out := srv.Lookup(key, size, tick, nil); !out.Hit {
				t.Fatal("hit path missed")
			}
		}); n != 0 {
			t.Errorf("ShardedEngine.Lookup hit path allocates %.1f/op, baseline pins 0", n)
		}
	})

	t.Run("ShardFor", func(t *testing.T) {
		shards := []*Engine{newShard(), newShard()}
		srv, err := NewShardedEngine(shards, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() {
			srv.ShardFor(key)
		}); n != 0 {
			t.Errorf("ShardedEngine.ShardFor allocates %.1f/op, baseline pins 0", n)
		}
	})
}
