package engine

// MetricHelp maps every Metrics field name to the help string the
// daemon's /metrics exposition publishes for it. The metricsync
// analyzer enforces that this map and the Metrics struct stay in
// lockstep — a counter added to Metrics without a help entry (or a
// stale entry for a removed counter) is a lint finding, and the
// server's exposition test fails if a field is missing from the page.
var MetricHelp = map[string]string{
	"Requests":   "Requests served (Lookup and Get calls) since boot.",
	"Hits":       "Requests answered from cache residency.",
	"HitBytes":   "Bytes of the requests answered from cache residency.",
	"Misses":     "Requests not resident at lookup time.",
	"Writes":     "Objects admitted and written to the cache device.",
	"WriteBytes": "Bytes admitted and written to the cache device.",
	"Bypassed":   "Missed objects the admission filter declined to cache.",
	"Rectified":  "Admission decisions flipped by the rectifier (predicted one-time but admitted, or vice versa).",
	"Degraded":   "Admission decisions served by the circuit breaker's fallback path instead of the primary filter.",
	"TotalBytes": "Bytes requested across all requests.",

	"FlashHostBytes": "Bytes the host wrote to the flash store (admissions; excludes GC relocation).",
	"FlashGCBytes":   "Bytes the flash garbage collector relocated to salvage live objects.",
	"FlashErases":    "Flash erase-block erasures across all segments.",

	"FlashReadErrors":     "Uncorrectable flash device reads (extent dropped, request degraded to a miss).",
	"FlashCorruptExtents": "Flash extents dropped for checksum mismatch (client read, scrub, or relocation).",
	"FlashRetiredBlocks":  "Flash erase blocks retired after a failed program or erase.",
}
