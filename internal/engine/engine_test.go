package engine

import (
	"sync"
	"testing"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/labeling"
	"otacache/internal/mlcore"
)

// oddBypass bypasses odd keys — a deterministic stand-in filter.
type oddBypass struct{}

func (oddBypass) Name() string { return "odd-bypass" }
func (oddBypass) Decide(key uint64, _ int, _ []float64) core.Decision {
	oneTime := key%2 == 1
	return core.Decision{Admit: !oneTime, PredictedOneTime: oneTime}
}

// alwaysOneTime predicts Positive for every vector, so every admission
// goes through the history-table rectification path.
type alwaysOneTime struct{}

func (alwaysOneTime) Name() string            { return "always-one-time" }
func (alwaysOneTime) Predict(_ []float64) int { return mlcore.Positive }
func (alwaysOneTime) Score(_ []float64) float64 {
	return 1
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil policy must error")
	}
	e, err := New(cache.NewLRU(1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Filter().Name() != "admit-all" {
		t.Fatalf("nil filter must default to admit-all, got %s", e.Filter().Name())
	}
	if e.Policy().Name() != "lru" {
		t.Fatalf("policy = %s", e.Policy().Name())
	}
}

func TestLookupMatchesBarePolicy(t *testing.T) {
	// With an admit-all filter the Engine must behave exactly like
	// driving the policy by hand.
	eng, err := New(cache.NewLRU(1<<10), nil)
	if err != nil {
		t.Fatal(err)
	}
	bare := cache.NewLRU(1 << 10)
	keys := []uint64{1, 2, 3, 1, 2, 4, 5, 1, 6, 3, 3, 7}
	for i, k := range keys {
		out := eng.Lookup(k, 64, i, nil)
		hit := bare.Get(k, i)
		if !hit {
			bare.Admit(k, 64, i)
		}
		if out.Hit != hit {
			t.Fatalf("tick %d key %d: engine hit=%v, bare hit=%v", i, k, out.Hit, hit)
		}
		if !out.Hit && (!out.Decision.Admit || !out.Written) {
			t.Fatalf("tick %d: admit-all miss must admit and write: %+v", i, out)
		}
	}
	m := eng.Snapshot()
	if m.Requests != int64(len(keys)) || m.Hits+m.Misses != m.Requests {
		t.Fatalf("inconsistent counters: %+v", m)
	}
	if m.Writes != m.Misses || m.Bypassed != 0 {
		t.Fatalf("admit-all: writes %d != misses %d (bypassed %d)", m.Writes, m.Misses, m.Bypassed)
	}
	if eng.Policy().Len() != bare.Len() || eng.Policy().Used() != bare.Used() {
		t.Fatal("engine-driven policy state diverged from bare policy")
	}
}

func TestOfferBypassAccounting(t *testing.T) {
	eng, err := New(cache.NewLRU(1<<10), oddBypass{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Lookup(uint64(i), 10, i, nil)
	}
	m := eng.Snapshot()
	if m.Misses != 10 {
		t.Fatalf("misses = %d", m.Misses)
	}
	if m.Bypassed != 5 || m.Writes != 5 {
		t.Fatalf("bypassed=%d writes=%d, want 5/5", m.Bypassed, m.Writes)
	}
	if m.Writes+m.Bypassed != m.Misses {
		t.Fatalf("writes+bypassed != misses: %+v", m)
	}
	if m.WriteBytes != 50 || m.TotalBytes != 100 {
		t.Fatalf("byte counters: %+v", m)
	}
	if eng.Policy().Contains(3) {
		t.Fatal("bypassed key must not be resident")
	}
	if !eng.Policy().Contains(4) {
		t.Fatal("admitted key missing")
	}
}

func TestRectifiedCounter(t *testing.T) {
	table := core.NewHistoryTable(16)
	adm, err := core.NewClassifierAdmission(alwaysOneTime{}, table, labeling.Criteria{M: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cache.NewLRU(1<<10), adm)
	if err != nil {
		t.Fatal(err)
	}
	// First miss: predicted one-time, bypassed and recorded.
	if out := eng.Lookup(7, 10, 0, nil); out.Decision.Admit {
		t.Fatalf("first miss must bypass: %+v", out)
	}
	// Second miss within M: rectified and admitted.
	out := eng.Lookup(7, 10, 1, nil)
	if !out.Decision.Rectified || !out.Decision.Admit || !out.Written {
		t.Fatalf("second miss must rectify: %+v", out)
	}
	m := eng.Snapshot()
	if m.Rectified != 1 || m.Bypassed != 1 || m.Writes != 1 {
		t.Fatalf("counters: %+v", m)
	}
}

func TestMetricsRates(t *testing.T) {
	m := Metrics{Requests: 10, Hits: 4, HitBytes: 400, Writes: 3, WriteBytes: 300, TotalBytes: 1000}
	if m.HitRate() != 0.4 || m.ByteHitRate() != 0.4 || m.WriteRate() != 0.3 || m.ByteWriteRate() != 0.3 {
		t.Fatalf("rates: %+v", m)
	}
	var zero Metrics
	if zero.HitRate() != 0 || zero.ByteWriteRate() != 0 {
		t.Fatal("zero metrics must have zero rates")
	}
}

func TestNextTickMonotonic(t *testing.T) {
	eng, err := New(cache.NewLRU(1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 1000
	seen := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g] = append(seen[g], eng.NextTick())
			}
		}(g)
	}
	wg.Wait()
	all := make(map[int]bool, goroutines*per)
	for g := range seen {
		for i := 1; i < len(seen[g]); i++ {
			if seen[g][i] <= seen[g][i-1] {
				t.Fatal("ticks not increasing within a goroutine")
			}
		}
		for _, v := range seen[g] {
			if all[v] {
				t.Fatalf("duplicate tick %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != goroutines*per {
		t.Fatalf("got %d distinct ticks", len(all))
	}
}

// TestConcurrentEngineStress hammers a fully concurrent composition —
// Sharded policy + classifier admission with history table — from many
// goroutines with mixed Lookup/Get/Offer/Snapshot traffic. Run under
// -race this is the Engine's thread-safety proof; the invariant checks
// catch lost updates.
func TestConcurrentEngineStress(t *testing.T) {
	sharded, err := cache.NewSharded(1<<16, 8, func(c int64) cache.Policy { return cache.NewLRU(c) })
	if err != nil {
		t.Fatal(err)
	}
	table := core.NewHistoryTable(4096)
	adm, err := core.NewClassifierAdmission(alwaysOneTime{}, table, labeling.Criteria{M: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sharded, adm)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const opsPer = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := uint64((g*opsPer + i) % 512)
				eng.Lookup(key, int64(1+key%64), eng.NextTick(), nil)
				if i%512 == 0 {
					_ = eng.Snapshot()
					adm.SetClassifier(alwaysOneTime{})
				}
			}
		}(g)
	}
	wg.Wait()

	m := eng.Snapshot()
	total := int64(goroutines * opsPer)
	if m.Requests != total {
		t.Fatalf("requests = %d, want %d", m.Requests, total)
	}
	if m.Hits+m.Misses != m.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", m.Hits, m.Misses, m.Requests)
	}
	// Concurrent misses on one key can race Admit/Contains, so writes
	// plus bypasses is bounded by, not equal to, the miss count.
	if m.Writes+m.Bypassed > m.Misses {
		t.Fatalf("writes %d + bypassed %d > misses %d", m.Writes, m.Bypassed, m.Misses)
	}
	if m.Rectified == 0 || m.Bypassed == 0 || m.Writes == 0 {
		t.Fatalf("stress exercised no admission paths: %+v", m)
	}
	if used := eng.Policy().Used(); used > eng.Policy().Cap() {
		t.Fatalf("capacity violated: %d > %d", used, eng.Policy().Cap())
	}
}
