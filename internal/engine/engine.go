// Package engine provides the serving-ready form of the paper's
// classification system (Figure 4): a thread-safe cache Engine that
// composes a replacement policy with an admission filter behind one
// entry point, counting the metrics the evaluation reports with atomic
// counters.
//
// The same Engine is driven by three callers with very different
// concurrency profiles:
//
//   - the single-threaded trace simulator (internal/sim), which wraps
//     it in per-request feature extraction, retraining, and the latency
//     model;
//   - the two-tier OC/DC hierarchy (internal/tier), one Engine per
//     layer;
//   - a concurrent cache server, which calls Lookup from many
//     goroutines against a cache.Sharded policy and a lock-protected
//     filter.
//
// Thread safety is compositional: the Engine's own counters are atomic,
// so Lookup and Snapshot are safe from any number of goroutines
// provided the composed Policy and Filter are themselves safe for
// concurrent use (cache.Sharded; core.AdmitAll, core.OracleAdmission,
// core.ClassifierAdmission, core.FrequencyAdmission). The bare
// single-threaded policies (cache.NewLRU etc.) remain valid for
// single-goroutine callers such as the simulator.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/flash"
)

// Engine is the admission pipeline: Get consults the policy, Offer runs
// the admission filter on a miss and inserts on admit, Lookup chains
// the two. It is safe for concurrent use when its policy and filter
// are (see the package comment).
type Engine struct {
	policy cache.Policy
	filter core.Filter
	tick   atomic.Int64
	// flash is the optional log-structured device layer under this
	// shard's policy: admitted writes land in it, so the snapshot
	// carries device-measured write amplification instead of a profile
	// constant. An atomic pointer because SetFlash may race Lookup
	// traffic (the daemon attaches after assembly).
	flash atomic.Pointer[flash.Store]
	// inst is the optional measurement plane (sampled lookup latency
	// histograms); same atomic-attach contract as flash. See
	// Instruments.
	inst atomic.Pointer[Instruments]

	requests   atomic.Int64
	hits       atomic.Int64
	hitBytes   atomic.Int64
	misses     atomic.Int64
	writes     atomic.Int64
	writeBytes atomic.Int64
	bypassed   atomic.Int64
	rectified  atomic.Int64
	degraded   atomic.Int64
	totalBytes atomic.Int64
}

// Outcome describes one Lookup (or Offer) with enough detail for a
// caller to account latency and classification quality.
type Outcome struct {
	// Hit reports that the object was resident; the remaining fields
	// are zero on a hit.
	Hit bool
	// Decision is the filter's verdict for the miss.
	Decision core.Decision
	// Written reports that the policy accepted the admitted object
	// (an over-capacity object can be rejected by the policy itself).
	Written bool
}

// Metrics is a point-in-time snapshot of the Engine's counters. Under
// concurrent traffic each counter is individually exact but the set is
// not a single atomic cut.
type Metrics struct {
	Requests   int64
	Hits       int64
	HitBytes   int64
	Misses     int64
	Writes     int64
	WriteBytes int64
	Bypassed   int64
	Rectified  int64
	// Degraded counts admission decisions served by a fallback path
	// (circuit breaker open, or the primary filter failed on that call)
	// rather than the primary filter — see Breaker.
	Degraded   int64
	TotalBytes int64
	// FlashHostBytes, FlashGCBytes, and FlashErases mirror the attached
	// flash store's wear counters (zero when no store is attached):
	// host-written bytes, GC-relocated bytes, and block erasures. The
	// measured device WAF is (host + gc) / host — see FlashWAF.
	FlashHostBytes int64
	FlashGCBytes   int64
	FlashErases    int64
	// FlashReadErrors, FlashCorruptExtents, and FlashRetiredBlocks mirror
	// the store's media-fault counters: uncorrectable device reads,
	// extents dropped on checksum mismatch, and erase blocks retired for
	// program/erase failure. Every one of these corresponds to a request
	// the engine degraded to a miss (or a scrub drop) rather than a
	// served error — the serving-visible face of the flash fault domain.
	FlashReadErrors     int64
	FlashCorruptExtents int64
	FlashRetiredBlocks  int64
}

// HitRate returns Hits / Requests.
func (m Metrics) HitRate() float64 { return ratio(m.Hits, m.Requests) }

// ByteHitRate returns HitBytes / TotalBytes.
func (m Metrics) ByteHitRate() float64 { return ratio(m.HitBytes, m.TotalBytes) }

// WriteRate returns SSD object writes / requests (§5.3.3).
func (m Metrics) WriteRate() float64 { return ratio(m.Writes, m.Requests) }

// ByteWriteRate returns SSD bytes written / requested bytes (§5.3.4).
func (m Metrics) ByteWriteRate() float64 { return ratio(m.WriteBytes, m.TotalBytes) }

// FlashWAF returns the device-measured write amplification factor,
// (FlashHostBytes + FlashGCBytes) / FlashHostBytes, or 1 when no flash
// writes have been observed (the log-structured floor).
func (m Metrics) FlashWAF() float64 {
	if m.FlashHostBytes == 0 {
		return 1
	}
	return float64(m.FlashHostBytes+m.FlashGCBytes) / float64(m.FlashHostBytes)
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Sub returns the interval delta m - prev, field by field. Taking two
// Snapshots around a window and subtracting them yields that window's
// traffic, so a server's /stats endpoint and a load generator can
// report rates over an interval instead of since-boot cumulatives.
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		Requests:   m.Requests - prev.Requests,
		Hits:       m.Hits - prev.Hits,
		HitBytes:   m.HitBytes - prev.HitBytes,
		Misses:     m.Misses - prev.Misses,
		Writes:     m.Writes - prev.Writes,
		WriteBytes: m.WriteBytes - prev.WriteBytes,
		Bypassed:   m.Bypassed - prev.Bypassed,
		Rectified:  m.Rectified - prev.Rectified,
		Degraded:   m.Degraded - prev.Degraded,
		TotalBytes: m.TotalBytes - prev.TotalBytes,

		FlashHostBytes: m.FlashHostBytes - prev.FlashHostBytes,
		FlashGCBytes:   m.FlashGCBytes - prev.FlashGCBytes,
		FlashErases:    m.FlashErases - prev.FlashErases,

		FlashReadErrors:     m.FlashReadErrors - prev.FlashReadErrors,
		FlashCorruptExtents: m.FlashCorruptExtents - prev.FlashCorruptExtents,
		FlashRetiredBlocks:  m.FlashRetiredBlocks - prev.FlashRetiredBlocks,
	}
}

// Add returns the field-wise sum m + other. ShardedEngine.Snapshot
// folds its shards' snapshots through Add, so — like Sub — the method
// must name every field: a counter missing here would silently vanish
// from every aggregated metric (the metricsync analyzer enforces this).
func (m Metrics) Add(other Metrics) Metrics {
	return Metrics{
		Requests:   m.Requests + other.Requests,
		Hits:       m.Hits + other.Hits,
		HitBytes:   m.HitBytes + other.HitBytes,
		Misses:     m.Misses + other.Misses,
		Writes:     m.Writes + other.Writes,
		WriteBytes: m.WriteBytes + other.WriteBytes,
		Bypassed:   m.Bypassed + other.Bypassed,
		Rectified:  m.Rectified + other.Rectified,
		Degraded:   m.Degraded + other.Degraded,
		TotalBytes: m.TotalBytes + other.TotalBytes,

		FlashHostBytes: m.FlashHostBytes + other.FlashHostBytes,
		FlashGCBytes:   m.FlashGCBytes + other.FlashGCBytes,
		FlashErases:    m.FlashErases + other.FlashErases,

		FlashReadErrors:     m.FlashReadErrors + other.FlashReadErrors,
		FlashCorruptExtents: m.FlashCorruptExtents + other.FlashCorruptExtents,
		FlashRetiredBlocks:  m.FlashRetiredBlocks + other.FlashRetiredBlocks,
	}
}

// New assembles an Engine. filter == nil means admit every miss
// (core.AdmitAll, the paper's "Original" behaviour).
func New(policy cache.Policy, filter core.Filter) (*Engine, error) {
	if policy == nil {
		return nil, fmt.Errorf("engine: nil policy")
	}
	if filter == nil {
		filter = core.AdmitAll{}
	}
	return &Engine{policy: policy, filter: filter}, nil
}

// Policy returns the composed replacement policy.
func (e *Engine) Policy() cache.Policy { return e.policy }

// Filter returns the composed admission filter.
func (e *Engine) Filter() core.Filter { return e.filter }

// NextTick returns a fresh monotonically increasing tick. Trace-driven
// callers pass their own request index instead; a live server that has
// no global request ordering uses this counter for the history table's
// reaccess distances.
func (e *Engine) NextTick() int { return nextTick(&e.tick) }

// nextTick draws the next tick from c and converts it to the int the
// rest of the pipeline speaks. The conversion is guarded: on a 32-bit
// platform a counter past MaxInt32 would otherwise wrap silently and
// corrupt every reaccess distance downstream, so overflowing int is a
// hard fault rather than quiet data corruption. (At 100k req/s that is
// ~6 hours of 32-bit uptime — reachable in production, unreachable by
// accident in tests.)
func nextTick(c *atomic.Int64) int {
	t := c.Add(1) - 1
	if int64(int(t)) != t {
		panic(fmt.Sprintf("engine: tick %d overflows int on this platform", t))
	}
	return int(t)
}

// Tick returns the next tick NextTick would hand out, without
// consuming it — the value a snapshot persists.
func (e *Engine) Tick() int64 { return e.tick.Load() }

// ResumeTick fast-forwards the tick counter to resume a snapshotted
// daemon: restored history-table ticks keep their meaning only if new
// requests continue the old numbering instead of restarting at zero
// (a restart at zero would make every restored entry look M ticks
// stale, or worse, in the future). Call before serving traffic.
func (e *Engine) ResumeTick(t int64) { e.tick.Store(t) }

// Get consults the policy for key, updating hit/miss counters. It is
// the first half of Lookup, exposed separately for callers (such as the
// tiered hierarchy) whose admission happens later on the return path.
//
// With a flash store attached, a policy hit is served only after the
// backing extent verifies: a media failure (uncorrectable read, checksum
// mismatch) degrades the request to a cache miss — the policy's phantom
// resident is evicted so the next admission re-materializes the object —
// never a serving error. An extent that is merely absent (the store
// rejected the admit as oversize or out of space) is not a media fault
// and hits normally; the policy is the residency authority there.
func (e *Engine) Get(key uint64, size int64, tick int) bool {
	e.requests.Add(1)
	e.totalBytes.Add(size)
	if e.policy.Get(key, tick) {
		if fs := e.flash.Load(); fs != nil {
			if _, _, err := fs.ReadExtent(key); err != nil && !errors.Is(err, flash.ErrNotFound) {
				// The store already dropped the extent and charged its
				// ReadErrors/CorruptExtents counter; evict the phantom so
				// the policy agrees the bytes are gone.
				if r, ok := e.policy.(cache.Remover); ok {
					r.Remove(key)
				}
				e.misses.Add(1)
				return false
			}
		}
		e.hits.Add(1)
		e.hitBytes.Add(size)
		return true
	}
	e.misses.Add(1)
	return false
}

// Offer runs the admission filter for a missed object and inserts it
// into the policy on admit. feat is the request's feature vector (nil
// for filters that do not use features).
func (e *Engine) Offer(key uint64, size int64, tick int, feat []float64) Outcome {
	d := e.filter.Decide(key, tick, feat)
	if d.Rectified {
		e.rectified.Add(1)
	}
	if d.Degraded {
		e.degraded.Add(1)
	}
	if !d.Admit {
		e.bypassed.Add(1)
		return Outcome{Decision: d}
	}
	e.policy.Admit(key, size, tick)
	out := Outcome{Decision: d}
	if e.policy.Contains(key) {
		out.Written = true
		e.writes.Add(1)
		e.writeBytes.Add(size)
		// An accepted admission is a device write: land the extent in the
		// attached flash store so its collector measures the real
		// amplification of this admission stream.
		if fs := e.flash.Load(); fs != nil {
			//lint:allow errsink the store charges Oversize/Dropped internally; the engine already counted the admission above
			fs.Write(key, size, nil)
		}
	}
	return out
}

// Lookup runs the full pipeline for one request: policy lookup, and on
// a miss the admission decision and insertion. With Instruments
// attached, a sampled subset of requests is timed into the lookup
// latency histogram; the untimed majority (and every request when no
// instruments are attached) runs the branch with no clock reads.
func (e *Engine) Lookup(key uint64, size int64, tick int, feat []float64) Outcome {
	if ins := e.inst.Load(); ins != nil && uint64(tick)&ins.mask == 0 {
		start := ins.clock.Now()
		var out Outcome
		if e.Get(key, size, tick) {
			out = Outcome{Hit: true}
		} else {
			out = e.Offer(key, size, tick, feat)
		}
		ins.Lookup.Record(int64(ins.clock.Now().Sub(start)))
		return out
	}
	if e.Get(key, size, tick) {
		return Outcome{Hit: true}
	}
	return e.Offer(key, size, tick, feat)
}

// Snapshot returns the current counters.
func (e *Engine) Snapshot() Metrics {
	var fst flash.Stats
	if fs := e.flash.Load(); fs != nil {
		fst = fs.Stats()
	}
	return Metrics{
		Requests:   e.requests.Load(),
		Hits:       e.hits.Load(),
		HitBytes:   e.hitBytes.Load(),
		Misses:     e.misses.Load(),
		Writes:     e.writes.Load(),
		WriteBytes: e.writeBytes.Load(),
		Bypassed:   e.bypassed.Load(),
		Rectified:  e.rectified.Load(),
		Degraded:   e.degraded.Load(),
		TotalBytes: e.totalBytes.Load(),

		FlashHostBytes: fst.HostBytes,
		FlashGCBytes:   fst.GCBytes,
		FlashErases:    fst.Erases,

		FlashReadErrors:     fst.ReadErrors,
		FlashCorruptExtents: fst.CorruptExtents,
		FlashRetiredBlocks:  fst.RetiredBlocks,
	}
}
