package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"otacache/internal/cache"
	"otacache/internal/core"
	"otacache/internal/faults"
	"otacache/internal/labeling"
	"otacache/internal/mlcore"
)

// benchEngine builds the server-shaped engine: a 16-way sharded LRU
// front over the given admission filter.
func benchEngine(b *testing.B, filter core.Filter) *Engine {
	b.Helper()
	policy, err := cache.NewSharded(512<<20, 16, func(c int64) cache.Policy { return cache.NewLRU(c) })
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(policy, filter)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchAdmission trains a small real CART on a synthetic two-class set
// so the benchmarked Decide path walks actual splits, backed by a
// history table sized to miss often enough to exercise insertion.
func benchAdmission(b *testing.B) *core.ClassifierAdmission {
	b.Helper()
	d := &mlcore.Dataset{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64() * 5, r.Float64() * 3}
		label := mlcore.Negative
		if x[0]+0.2*x[1] > 0.6 {
			label = mlcore.Positive
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, label)
	}
	tree, err := core.TrainTree(d, 2)
	if err != nil {
		b.Fatal(err)
	}
	adm, err := core.NewClassifierAdmission(tree, core.NewHistoryTable(4096), labeling.Criteria{M: 5000})
	if err != nil {
		b.Fatal(err)
	}
	return adm
}

// benchSharded splits the benchEngine composition into n independent
// engine shards behind a ring: total capacity and inner cache shards
// are divided so every variant manages the same aggregate cache.
func benchSharded(b *testing.B, n int, classified bool) *ShardedEngine {
	b.Helper()
	inner := 16 / n
	if inner < 1 {
		inner = 1
	}
	shards := make([]*Engine, n)
	for i := range shards {
		policy, err := cache.NewSharded((512<<20)/int64(n), inner,
			func(c int64) cache.Policy { return cache.NewLRU(c) })
		if err != nil {
			b.Fatal(err)
		}
		var filter core.Filter
		if classified {
			filter = benchAdmission(b)
		}
		shards[i], err = New(policy, filter)
		if err != nil {
			b.Fatal(err)
		}
	}
	se, err := NewShardedEngine(shards, 7)
	if err != nil {
		b.Fatal(err)
	}
	return se
}

// benchLookup drives Lookup from b.RunParallel over a Zipf-ish key
// space — the concurrency profile of the network daemon's hot path.
func benchLookup(b *testing.B, eng Server, withFeat bool) {
	b.Helper()
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(seed.Add(1)))
		feat := make([]float64, 5)
		for pb.Next() {
			// Skewed popularity: a small hot set plus a long tail, so
			// both the hit path and the admission path stay busy.
			var key uint64
			if r.Intn(4) > 0 {
				key = uint64(r.Intn(4096))
			} else {
				key = uint64(4096 + r.Intn(1<<20))
			}
			var f []float64
			if withFeat {
				feat[0] = float64(key%97) / 97
				feat[1] = float64(key%13) / 13
				feat[2] = 0.5
				feat[3] = float64(key % 5)
				feat[4] = float64(key % 3)
				f = feat
			}
			eng.Lookup(key, 100<<10, eng.NextTick(), f)
		}
	})
}

// BenchmarkLookupAdmitAll measures the sharded-LRU hot path with no
// admission filtering — the traditional-cache baseline.
func BenchmarkLookupAdmitAll(b *testing.B) {
	benchLookup(b, benchEngine(b, nil), false)
}

// BenchmarkLookupClassifier measures the full proposal path: sharded
// LRU plus cost-sensitive CART prediction and history-table
// rectification on every miss.
func BenchmarkLookupClassifier(b *testing.B) {
	benchLookup(b, benchEngine(b, benchAdmission(b)), true)
}

// BenchmarkLookupInstrumented is BenchmarkLookupAdmitAll with the
// measurement plane attached at the default sample period: the pair's
// ns/op delta is the live cost of observability, and cmd/benchgate
// fails CI when it exceeds 5%.
func BenchmarkLookupInstrumented(b *testing.B) {
	eng := benchEngine(b, nil)
	eng.SetInstruments(NewInstruments(faults.WallClock{}, DefaultSampleEvery))
	benchLookup(b, eng, false)
}

// BenchmarkLookupShardedAdmitAll measures ring routing over N
// independent admit-all engines; shards=1 prices the routing layer
// itself against BenchmarkLookupAdmitAll.
func BenchmarkLookupShardedAdmitAll(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchLookup(b, benchSharded(b, n, false), false)
		})
	}
}

// BenchmarkLookupShardedClassifier measures the contended case sharding
// exists for: every miss walks a CART and takes its shard's history
// table lock, so independent per-shard admission state should scale
// where the single shared table serializes.
func BenchmarkLookupShardedClassifier(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchLookup(b, benchSharded(b, n, true), true)
		})
	}
}
