package engine

import (
	"fmt"
	"sync/atomic"

	"otacache/internal/cluster"
)

// Server is the serving-stack abstraction over one or many engines: the
// surface internal/server, the snapshot subsystem, and the daemon drive.
// *Engine satisfies it directly (a fleet of one); ShardedEngine routes
// keys over a consistent-hash ring to N fully independent engines.
//
// Tick numbering is global to the Server, never per shard: reaccess
// distances (the criteria's M) are defined over the total request
// stream, so the history tables of every shard must compare ticks drawn
// from one counter.
type Server interface {
	// Lookup runs the full pipeline for one request: policy lookup, and
	// on a miss the admission decision and insertion.
	Lookup(key uint64, size int64, tick int, feat []float64) Outcome
	// Get consults the owning shard's policy, updating hit/miss counters.
	Get(key uint64, size int64, tick int) bool
	// Offer runs the owning shard's admission filter for a missed object.
	Offer(key uint64, size int64, tick int, feat []float64) Outcome
	// Snapshot returns the counters aggregated across all shards.
	Snapshot() Metrics
	// NextTick returns a fresh tick from the global counter.
	NextTick() int
	// Tick returns the next tick NextTick would hand out.
	Tick() int64
	// ResumeTick fast-forwards the global tick counter (see
	// Engine.ResumeTick).
	ResumeTick(t int64)
	// Shards enumerates the independent engines, in shard order. A plain
	// *Engine returns itself as the only element.
	Shards() []*Engine
	// ShardFor returns the index (into Shards) of the shard owning key.
	ShardFor(key uint64) int
}

var (
	_ Server = (*Engine)(nil)
	_ Server = (*ShardedEngine)(nil)
)

// Shards implements Server: a plain Engine is a fleet of one.
func (e *Engine) Shards() []*Engine { return []*Engine{e} }

// ShardFor implements Server: a plain Engine owns every key.
func (e *Engine) ShardFor(key uint64) int { return 0 }

// ShardedEngine routes requests over a consistent-hash ring to N fully
// independent engines. Each shard owns its own policy, admission filter,
// history table, and (when the daemon wraps one) circuit breaker, so a
// degraded classifier or a contended lock on one shard never stalls the
// others. Only the tick counter is shared — see Server.
//
// It is safe for concurrent use when every shard engine is (the usual
// composition: cache.NewSharded policies and the thread-safe filters).
type ShardedEngine struct {
	ring   *cluster.Ring
	shards []*Engine
	tick   atomic.Int64
}

// NewShardedEngine assembles a sharded engine over the given shard
// engines. ringSeed fixes the ring's virtual-node placement; the same
// seed and shard count always route identically, which restarts rely on.
func NewShardedEngine(shards []*Engine, ringSeed uint64) (*ShardedEngine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: sharded engine needs at least one shard")
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("engine: nil shard %d", i)
		}
	}
	ring, err := cluster.NewRing(len(shards), 0, ringSeed)
	if err != nil {
		return nil, err
	}
	s := &ShardedEngine{ring: ring, shards: shards}
	return s, nil
}

// Shards implements Server.
func (s *ShardedEngine) Shards() []*Engine { return s.shards }

// ShardFor implements Server. A one-shard engine skips the ring walk:
// the route is forced, and the fast path keeps the 1-shard composition
// at single-Engine cost on the serving hot path.
func (s *ShardedEngine) ShardFor(key uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return s.ring.Server(key)
}

// NextTick implements Server over the global counter.
func (s *ShardedEngine) NextTick() int { return nextTick(&s.tick) }

// Tick implements Server.
func (s *ShardedEngine) Tick() int64 { return s.tick.Load() }

// ResumeTick implements Server.
func (s *ShardedEngine) ResumeTick(t int64) { s.tick.Store(t) }

// Get implements Server, routing to the owning shard.
func (s *ShardedEngine) Get(key uint64, size int64, tick int) bool {
	return s.shards[s.ShardFor(key)].Get(key, size, tick)
}

// Offer implements Server, routing to the owning shard.
func (s *ShardedEngine) Offer(key uint64, size int64, tick int, feat []float64) Outcome {
	return s.shards[s.ShardFor(key)].Offer(key, size, tick, feat)
}

// Lookup implements Server, routing to the owning shard. The shard is
// resolved once: Get and Offer of one request must not race a ring
// change onto different shards.
func (s *ShardedEngine) Lookup(key uint64, size int64, tick int, feat []float64) Outcome {
	return s.shards[s.ShardFor(key)].Lookup(key, size, tick, feat)
}

// Snapshot implements Server: the field-wise sum of every shard's
// counters. Summation lives in Metrics.Add so the metricsync analyzer
// and the reflection tests can pin that no field skips aggregation.
func (s *ShardedEngine) Snapshot() Metrics {
	var m Metrics
	for _, sh := range s.shards {
		m = m.Add(sh.Snapshot())
	}
	return m
}
