package engine

import (
	"otacache/internal/faults"
	"otacache/internal/obs"
)

// Instruments is the measurement plane for one engine shard: sampled
// wall-time latency histograms around the request pipeline. It is
// deliberately optional — an Engine with no Instruments attached runs
// the exact pre-observability hot path — and deliberately sampled: the
// full lookup fast path is a few hundred nanoseconds, so timing every
// request with two clock reads would be measurable overhead, while a
// 1-in-N sample keeps the quantile estimates sound (the histogram is
// log-bucketed; its error is bounded by bucket width, not sample
// count) at a cost the BenchmarkLookupInstrumented gate bounds at 5%.
//
// Timing goes through the faults.Clock seam, not time.Now, for the
// same reason the Breaker's does: tests drive a FakeClock and observe
// deterministic durations, and the detclock analyzer keeps direct
// clock reads out of the serving packages.
type Instruments struct {
	clock faults.Clock
	// mask gates lookup timing: a request is timed when tick&mask == 0.
	// The tick already arrives at Lookup as an argument and already
	// increments once per request, so the sampling decision is pure
	// ALU on a value in hand — the unsampled path adds no memory
	// traffic at all (an obs.Sampler's shard counter would be an
	// atomic RMW per lookup, measurable against a ~150ns baseline).
	// The cost is that the period rounds up to a power of two.
	mask uint64

	// Lookup is the end-to-end Engine.Lookup latency (policy get,
	// admission decision, flash write) for sampled requests.
	Lookup *obs.Histogram
	// Classifier is the primary admission filter's decision latency,
	// observed by the Breaker when the server wires it (every primary
	// decision, not sampled — inference is microseconds, not
	// nanoseconds, and the Breaker already reads the clock on entry).
	Classifier *obs.Histogram
}

// DefaultSampleEvery is the lookup-timing sample period the server
// uses when the operator does not choose one: 1 in 64 keeps the
// instrumented hot path within the benchmark overhead gate while a
// busy shard still collects thousands of samples per second.
const DefaultSampleEvery = 64

// NewInstruments builds an instrument set. A nil clock means the wall
// clock; sampleEvery <= 1 times every lookup (tests and offline
// analysis), larger values time 1 in sampleEvery rounded up to the
// next power of two (see Instruments.mask).
func NewInstruments(clock faults.Clock, sampleEvery int) *Instruments {
	if clock == nil {
		clock = faults.WallClock{}
	}
	period := uint64(1)
	for int(period) < sampleEvery {
		period <<= 1
	}
	return &Instruments{
		clock:      clock,
		mask:       period - 1,
		Lookup:     obs.NewHistogram(),
		Classifier: obs.NewHistogram(),
	}
}

// Clock returns the instrument clock (shared with the component under
// test when a FakeClock is injected).
func (ins *Instruments) Clock() faults.Clock { return ins.clock }

// SampleEvery returns the effective lookup-timing sample period (the
// requested period rounded up to a power of two).
func (ins *Instruments) SampleEvery() int { return int(ins.mask) + 1 }

// SetInstruments attaches (or, with nil, detaches) the measurement
// plane. An atomic pointer because attachment may race live Lookup
// traffic — the daemon wires observability after assembly, exactly
// like SetFlash.
func (e *Engine) SetInstruments(ins *Instruments) { e.inst.Store(ins) }

// Instruments returns the attached measurement plane (nil when none).
func (e *Engine) Instruments() *Instruments { return e.inst.Load() }
