package engine

import (
	"reflect"
	"strings"
	"testing"
)

// TestMetricHelpCoversMetrics is the runtime half of the metricsync
// HelpVar leg: MetricHelp and the Metrics struct must be the same set
// of names, and every help string must read like one (non-empty,
// terminated).
func TestMetricHelpCoversMetrics(t *testing.T) {
	mt := reflect.TypeOf(Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		help, ok := MetricHelp[name]
		if !ok {
			t.Errorf("Metrics.%s has no MetricHelp entry; /metrics would publish it without HELP text", name)
			continue
		}
		if strings.TrimSpace(help) == "" {
			t.Errorf("MetricHelp[%q] is blank", name)
		}
		if !strings.HasSuffix(help, ".") {
			t.Errorf("MetricHelp[%q] = %q does not end in a period", name, help)
		}
	}
	for key := range MetricHelp {
		if _, ok := mt.FieldByName(key); !ok {
			t.Errorf("MetricHelp key %q names no Metrics field (stale entry)", key)
		}
	}
}
