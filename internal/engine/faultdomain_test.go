package engine

import (
	"testing"
	"time"

	"otacache/internal/cache"
	"otacache/internal/faults"
	"otacache/internal/flash"
)

// attachFaultFlash attaches per-shard stores whose devices are
// countdown-fault wrappers, returning them in shard order.
func attachFaultFlash(t *testing.T, srv Server, opts FlashOptions) []*faultCountdownDev {
	t.Helper()
	devs := make([]*faultCountdownDev, len(srv.Shards()))
	opts.Device = func(shard, segments int) flash.Device {
		devs[shard] = &faultCountdownDev{inner: flash.NewMemDevice(segments)}
		return devs[shard]
	}
	if err := AttachFlashOpts(srv, opts); err != nil {
		t.Fatal(err)
	}
	return devs
}

// TestGetDegradesCorruptExtentToMiss pins the serving contract of the
// flash fault domain: a policy hit whose backing extent fails
// verification becomes a cache miss — the phantom resident is evicted,
// the fault counters tick, and the very next admission re-materializes
// the object so the degradation is one request wide, not permanent.
func TestGetDegradesCorruptExtentToMiss(t *testing.T) {
	e, err := New(cache.NewLRU(1<<16), nil)
	if err != nil {
		t.Fatal(err)
	}
	devs := attachFaultFlash(t, e, FlashOptions{SegmentSize: 1024, Overprovision: 1.5})
	e.Lookup(1, 100, e.NextTick(), nil)
	if !e.Get(1, 100, e.NextTick()) {
		t.Fatal("setup: clean extent did not hit")
	}
	// Silently corrupt the next device read: the checksum pass must
	// catch it and the hit must degrade.
	devs[0].corruptReads = 1
	if e.Get(1, 100, e.NextTick()) {
		t.Fatal("corrupt extent served as a hit")
	}
	if e.Policy().Contains(1) {
		t.Fatal("phantom resident not evicted from the policy")
	}
	m := e.Snapshot()
	if m.FlashCorruptExtents != 1 {
		t.Fatalf("FlashCorruptExtents = %d, want 1", m.FlashCorruptExtents)
	}
	if m.Hits != 1 || m.Misses != 2 {
		t.Fatalf("hits %d misses %d; the degraded request must count as a miss", m.Hits, m.Misses)
	}
	// Self-healing: the next full lookup re-admits and serves again.
	if out := e.Lookup(1, 100, e.NextTick(), nil); out.Hit || !out.Written {
		t.Fatalf("re-admission after degradation: %+v", out)
	}
	if !e.Get(1, 100, e.NextTick()) {
		t.Fatal("re-materialized object does not hit")
	}

	// An uncorrectable device read degrades identically.
	devs[0].failReads = 1
	if e.Get(1, 100, e.NextTick()) {
		t.Fatal("uncorrectable read served as a hit")
	}
	if m := e.Snapshot(); m.FlashReadErrors != 1 {
		t.Fatalf("FlashReadErrors = %d, want 1", m.FlashReadErrors)
	}
}

// TestGetMissingExtentStillHits pins the other side of the degrade
// contract: an extent that is merely absent — the store rejected the
// admit as oversize, so there was never data to lose — is not a media
// fault, and the policy's residency verdict stands.
func TestGetMissingExtentStillHits(t *testing.T) {
	e, err := New(cache.NewLRU(1<<16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlashOpts(e, FlashOptions{SegmentSize: 1024, Overprovision: 1.5}); err != nil {
		t.Fatal(err)
	}
	// 2000 bytes exceeds the 1024-byte erase block: the policy admits,
	// the store refuses the extent.
	e.Lookup(7, 2000, e.NextTick(), nil)
	if st := e.Flash().Stats(); st.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", st.Oversize)
	}
	if !e.Get(7, 2000, e.NextTick()) {
		t.Fatal("extent-less resident degraded to a miss; absence is not a media fault")
	}
	if m := e.Snapshot(); m.FlashReadErrors != 0 || m.FlashCorruptExtents != 0 {
		t.Fatalf("absence charged fault counters: %+v", m)
	}
}

// TestAttachFlashOptsSparePool pins the option surface: explicit spare
// sizing, the derive-from-overprovision-slack default, and validation.
func TestAttachFlashOptsSparePool(t *testing.T) {
	newEng := func() *Engine {
		e, err := New(cache.NewLRU(64*1024), nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e := newEng()
	if err := AttachFlashOpts(e, FlashOptions{SegmentSize: 1024, Overprovision: 1.25, SpareBlocks: 7}); err != nil {
		t.Fatal(err)
	}
	if st := e.Flash().Stats(); st.SpareBlocks != 7 {
		t.Fatalf("SpareBlocks = %d, want explicit 7", st.SpareBlocks)
	}
	// Derived: capacity 80 segments, policy needs ceil(65536/1024) = 64,
	// so the slack is 16 spare blocks.
	e = newEng()
	if err := AttachFlashOpts(e, FlashOptions{SegmentSize: 1024, Overprovision: 1.25}); err != nil {
		t.Fatal(err)
	}
	if st := e.Flash().Stats(); st.SpareBlocks != 16 {
		t.Fatalf("derived SpareBlocks = %d, want the overprovision slack 16", st.SpareBlocks)
	}
	if err := AttachFlashOpts(newEng(), FlashOptions{SegmentSize: 1024, Overprovision: 1.25, SpareBlocks: -1}); err == nil {
		t.Fatal("negative spare blocks accepted")
	}
	if err := AttachFlashOpts(newEng(), FlashOptions{SegmentSize: -5, Overprovision: 1.25}); err == nil {
		t.Fatal("negative segment size accepted")
	}
}

// TestScrubberFindsLatentCorruption pins the patrol path: corruption
// sitting under a cold (never-read) object is found by the scrubber's
// step and dropped, so only a policy miss — not a served error — can
// ever reach the client for that key.
func TestScrubberFindsLatentCorruption(t *testing.T) {
	se := newTestSharded(t, 2, 1<<14)
	devs := attachFaultFlash(t, se, FlashOptions{SegmentSize: 512, Overprovision: 1.5})
	// Fill enough small objects that every shard seals segments.
	for i := uint64(0); i < 400; i++ {
		se.Lookup(i, 64, se.NextTick(), nil)
	}
	sc, err := NewScrubber(se, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Arm silent corruption on every device: the next read each device
	// serves returns flipped bytes. No client read happens — only the
	// scrub patrol touches the extents.
	for _, dev := range devs {
		dev.corruptReads = 1
	}
	var dropped int
	for pass := 0; pass < 200 && dropped < 2; pass++ {
		_, d := sc.Step()
		dropped += d
	}
	if dropped < 2 {
		t.Fatalf("scrub dropped %d corrupt extents, want one per shard", dropped)
	}
	if sc.Dropped() != int64(dropped) || sc.Segments() == 0 {
		t.Fatalf("scrubber counters off: segments %d dropped %d", sc.Segments(), sc.Dropped())
	}
	if m := se.Snapshot(); m.FlashCorruptExtents != 2 {
		t.Fatalf("FlashCorruptExtents = %d, want 2", m.FlashCorruptExtents)
	}
}

// TestScrubberLoop runs the background loop on a real (short) clock:
// it must make progress without any engine lock held across its sleep,
// and Stop must end it.
func TestScrubberLoop(t *testing.T) {
	e, err := New(cache.NewLRU(1<<14), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFlashOpts(e, FlashOptions{SegmentSize: 512, Overprovision: 1.5}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		e.Lookup(i, 64, e.NextTick(), nil)
	}
	sc, err := NewScrubber(e, time.Millisecond, faults.WallClock{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScrubber(nil, time.Millisecond, nil); err == nil {
		t.Fatal("nil server accepted")
	}
	if _, err := NewScrubber(e, 0, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
	sc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for sc.Segments() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrub loop made no progress in 5s")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	select {
	case <-sc.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("scrub loop did not exit after Stop")
	}
}
