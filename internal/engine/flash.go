package engine

import (
	"fmt"

	"otacache/internal/cache"
	"otacache/internal/flash"
)

// SetFlash attaches a flash store under this engine's policy (nil
// detaches). Admitted writes land in the store from then on; Snapshot
// mirrors its wear counters into the Flash* metrics.
func (e *Engine) SetFlash(s *flash.Store) { e.flash.Store(s) }

// Flash returns the attached flash store, or nil.
func (e *Engine) Flash() *flash.Store { return e.flash.Load() }

// AttachFlash builds and attaches one flash store per shard of srv.
// Each store is sized at the shard policy's capacity times
// overprovision (> 1; the slack is the collector's working room — real
// devices ship 7–28% [1.07–1.28]) and consults the shard policy's
// Contains as its liveness oracle, so policy evictions invalidate
// extents lazily at collection time with no callback threaded through
// the policies.
//
// Lock ordering: the store calls Contains while holding its own mutex,
// and the engine calls flash.Write only after the policy's Admit has
// returned — flash → policy is the only nesting, so the pair cannot
// deadlock.
func AttachFlash(srv Server, segmentSize int64, overprovision float64) error {
	if srv == nil {
		return fmt.Errorf("engine: AttachFlash on nil server")
	}
	if overprovision <= 1 {
		return fmt.Errorf("engine: flash overprovision must exceed 1 (got %g); the collector needs slack beyond the policy's capacity", overprovision)
	}
	for i, sh := range srv.Shards() {
		pol := sh.Policy()
		st, err := flash.New(flash.Config{
			SegmentSize: segmentSize,
			Capacity:    int64(float64(pol.Cap()) * overprovision),
			Live:        pol.Contains,
		})
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
		sh.SetFlash(st)
	}
	return nil
}

// RebuildFlash re-materializes every shard's flash store from its
// policy's current resident set: the restart path. The device a
// restarted daemon boots with is empty (payload extents are not
// persisted), so each store is Reset and the restored residency is
// re-appended via Restore — uncharged writes, because the device paid
// for them in its previous life and counting them again would pollute
// the measured WAF with a restore burst. Shards without a store or
// whose policy cannot enumerate residents are skipped.
//
// The caller must not run traffic concurrently (the snapshot restore
// path is drained); residency is buffered outside the policy lock
// because Range holds it and a Restore-triggered collection consults
// policy.Contains.
func RebuildFlash(srv Server) {
	for _, sh := range srv.Shards() {
		fs := sh.Flash()
		if fs == nil {
			continue
		}
		r, ok := sh.Policy().(cache.Ranger)
		if !ok {
			continue
		}
		type resident struct {
			key  uint64
			size int64
		}
		var residents []resident
		r.Range(func(key uint64, size int64) bool {
			residents = append(residents, resident{key, size})
			return true
		})
		fs.Reset()
		for _, res := range residents {
			fs.Restore(res.key, res.size)
		}
	}
}
