package engine

import (
	"fmt"

	"otacache/internal/cache"
	"otacache/internal/flash"
)

// SetFlash attaches a flash store under this engine's policy (nil
// detaches). Admitted writes land in the store from then on; Snapshot
// mirrors its wear counters into the Flash* metrics.
func (e *Engine) SetFlash(s *flash.Store) { e.flash.Store(s) }

// Flash returns the attached flash store, or nil.
func (e *Engine) Flash() *flash.Store { return e.flash.Load() }

// AttachFlash builds and attaches one flash store per shard of srv.
// Each store is sized at the shard policy's capacity times
// overprovision (> 1; the slack is the collector's working room — real
// devices ship 7–28% [1.07–1.28]) and consults the shard policy's
// Contains as its liveness oracle, so policy evictions invalidate
// extents lazily at collection time with no callback threaded through
// the policies.
//
// Lock ordering: the store calls Contains while holding its own mutex,
// and the engine calls flash.Write only after the policy's Admit has
// returned — flash → policy is the only nesting, so the pair cannot
// deadlock.
func AttachFlash(srv Server, segmentSize int64, overprovision float64) error {
	return AttachFlashOpts(srv, FlashOptions{SegmentSize: segmentSize, Overprovision: overprovision})
}

// FlashOptions parameterizes AttachFlashOpts beyond the geometry:
// the fault-domain knobs the daemon exposes as flags.
type FlashOptions struct {
	// SegmentSize is the erase-block size in bytes.
	SegmentSize int64
	// Overprovision scales each shard policy's capacity to the device
	// capacity (must exceed 1; the slack is the collector's working room).
	Overprovision float64
	// SpareBlocks is each shard store's bad-block retirement budget.
	// Zero derives it from the overprovision slack: the segments beyond
	// what the policy's capacity strictly needs, floored at one — the
	// device can lose exactly its slack to media failure before the
	// geometry no longer fits the policy and /readyz reports EOL.
	SpareBlocks int
	// Device, when set, supplies each shard's flash device (shard index
	// and segment count); nil means a plain in-memory device. The daemon's
	// fault drill injects media faults here.
	Device func(shard, segments int) flash.Device
}

// AttachFlashOpts is AttachFlash with the fault-domain knobs exposed.
func AttachFlashOpts(srv Server, opts FlashOptions) error {
	if srv == nil {
		return fmt.Errorf("engine: AttachFlash on nil server")
	}
	if opts.Overprovision <= 1 {
		return fmt.Errorf("engine: flash overprovision must exceed 1 (got %g); the collector needs slack beyond the policy's capacity", opts.Overprovision)
	}
	if opts.SegmentSize <= 0 {
		return fmt.Errorf("engine: flash segment size must be positive (got %d)", opts.SegmentSize)
	}
	if opts.SpareBlocks < 0 {
		return fmt.Errorf("engine: flash spare blocks must not be negative (got %d)", opts.SpareBlocks)
	}
	for i, sh := range srv.Shards() {
		pol := sh.Policy()
		capacity := int64(float64(pol.Cap()) * opts.Overprovision)
		segments := int(capacity / opts.SegmentSize)
		spare := opts.SpareBlocks
		if spare == 0 {
			// The overprovision slack in whole segments: what the device
			// can retire before the policy's bytes no longer fit.
			need := (pol.Cap() + opts.SegmentSize - 1) / opts.SegmentSize
			spare = segments - int(need)
			if spare < 1 {
				spare = 1
			}
		}
		var dev flash.Device
		if opts.Device != nil {
			dev = opts.Device(i, segments)
		}
		st, err := flash.New(flash.Config{
			SegmentSize: opts.SegmentSize,
			Capacity:    capacity,
			Live:        pol.Contains,
			Device:      dev,
			SpareBlocks: spare,
		})
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
		sh.SetFlash(st)
	}
	return nil
}

// RebuildFlash re-materializes every shard's flash store from its
// policy's current resident set: the restart path. The device a
// restarted daemon boots with is empty (payload extents are not
// persisted), so each store is Reset and the restored residency is
// re-appended via Restore — uncharged writes, because the device paid
// for them in its previous life and counting them again would pollute
// the measured WAF with a restore burst. Shards without a store or
// whose policy cannot enumerate residents are skipped.
//
// The caller must not run traffic concurrently (the snapshot restore
// path is drained); residency is buffered outside the policy lock
// because Range holds it and a Restore-triggered collection consults
// policy.Contains.
func RebuildFlash(srv Server) {
	for _, sh := range srv.Shards() {
		fs := sh.Flash()
		if fs == nil {
			continue
		}
		r, ok := sh.Policy().(cache.Ranger)
		if !ok {
			continue
		}
		type resident struct {
			key  uint64
			size int64
		}
		var residents []resident
		r.Range(func(key uint64, size int64) bool {
			residents = append(residents, resident{key, size})
			return true
		})
		fs.Reset()
		for _, res := range residents {
			//lint:allow errsink rebuild is best-effort; an unrestorable resident stays unmaterialized and reads as a miss
			fs.Restore(res.key, res.size)
		}
	}
}
