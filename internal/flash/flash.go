// Package flash implements a log-structured flash store: the device
// layer under the serving engine that actually holds cached object
// payloads and pays real erase-block costs, instead of assuming a
// hand-picked write amplification factor.
//
// The layout is the one production SSD caches use (Flashield, RIPQ):
// the store's capacity is divided into fixed-size segments mapped onto
// erase blocks. Writes append to the head segment of a log; an object
// index maps key -> (segment, offset, length). An object dies when it
// is overwritten, explicitly invalidated, or — lazily — when the
// composed replacement policy no longer considers it resident (the
// Live callback). Dead space is reclaimed by a greedy garbage
// collector: when the free-segment pool runs low it picks the sealed
// segment with the fewest live bytes, relocates the survivors to the
// log head, and erases the block. Those relocations are exactly where
// GC-induced write amplification comes from, so the store measures it
// instead of guessing:
//
//	WAF = (host bytes + relocated bytes) / host bytes
//
// plus erase counts per block, which ssd.Endurance turns into a live
// lifetime estimate (Endurance.WithMeasuredWAF).
//
// A Store is safe for concurrent use; the serving stack runs one store
// per engine shard, so the single mutex shards with the engines.
package flash

import (
	"fmt"
	"sync"
)

// minSegments is the smallest segment count a store operates with: the
// active head plus at least three more so the collector has sealed
// segments to choose between.
const minSegments = 4

// Config sizes one store.
type Config struct {
	// SegmentSize is the erase-block size in bytes. Objects larger than
	// one segment are not stored (see Stats.Oversize).
	SegmentSize int64
	// Capacity is the device capacity in bytes, rounded up to whole
	// segments (at least minSegments). Size it above the composed
	// policy's capacity — the overprovisioned slack is what gives the
	// collector dead space to reclaim; a store whose live bytes approach
	// its capacity grinds into relocation storms exactly like a real
	// device at 100% utilization.
	Capacity int64
	// Live reports whether a key is still logically live — the composed
	// replacement policy's Contains. The collector consults it before
	// relocating, so policy evictions invalidate lazily without an
	// eviction callback threaded through every policy. nil means objects
	// stay live until overwritten or explicitly invalidated.
	Live func(key uint64) bool
}

// Stats is a point-in-time snapshot of the store's wear counters.
type Stats struct {
	// SegmentSize and Segments describe the fixed layout.
	SegmentSize int64
	Segments    int
	// FreeSegments counts erased segments ready to become the log head.
	FreeSegments int
	// HostBytes counts bytes the caller wrote (admissions); relocations
	// are excluded — they are the amplification, not the cause.
	HostBytes int64
	// GCBytes counts bytes the collector relocated to salvage live
	// objects out of victim segments.
	GCBytes int64
	// Erases counts segment erasures across all blocks.
	Erases int64
	// MinSegmentErases and MaxSegmentErases bound the per-block erase
	// distribution (wear leveling inspection).
	MinSegmentErases int64
	MaxSegmentErases int64
	// LiveBytes is the store's live-byte estimate: exact with respect to
	// overwrites and explicit invalidation, an upper bound with respect
	// to lazy policy evictions (those are discovered at collection).
	LiveBytes int64
	// Relocations counts objects the collector moved.
	Relocations int64
	// Oversize counts writes rejected for exceeding one segment.
	Oversize int64
	// Dropped counts writes abandoned because collection could free no
	// segment — a store sized with sane overprovisioning never increments
	// this.
	Dropped int64
}

// WAF returns the measured write amplification factor,
// (host + relocated) / host. An unwritten store reports 1 (the floor:
// a log-structured device never amplifies below the host stream).
func (s Stats) WAF() float64 {
	if s.HostBytes == 0 {
		return 1
	}
	return float64(s.HostBytes+s.GCBytes) / float64(s.HostBytes)
}

// loc addresses one live object: a segment and a slot in its append
// order.
type loc struct {
	seg  int
	slot int
}

// obj is one appended extent inside a segment.
type obj struct {
	key  uint64
	off  int64
	size int64
	// hasData marks extents whose payload bytes live in the segment
	// buffer; extent-only objects track size and placement alone.
	hasData bool
	dead    bool
}

// segment is one erase block.
type segment struct {
	objs   []obj
	used   int64 // write head (includes dead extents until erase)
	live   int64 // live-byte estimate, see Stats.LiveBytes
	sealed bool
	erases int64
	// buf holds payload bytes, allocated on the first data-carrying
	// write; extent-only callers (the engine, which tracks sizes) never
	// pay for it.
	buf []byte
}

// Store is a log-structured flash store. Safe for concurrent use.
type Store struct {
	segSize int64
	live    func(key uint64) bool

	mu     sync.Mutex
	segs   []*segment
	free   []int // erased segment ids, LIFO
	active int   // log head segment id
	index  map[uint64]loc

	hostBytes   int64
	gcBytes     int64
	erases      int64
	relocations int64
	oversize    int64
	dropped     int64
}

// New builds a store. Capacity is rounded up to whole segments and to
// the minimum segment count the collector needs.
func New(cfg Config) (*Store, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("flash: segment size must be positive, got %d", cfg.SegmentSize)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("flash: capacity must be positive, got %d", cfg.Capacity)
	}
	n := int((cfg.Capacity + cfg.SegmentSize - 1) / cfg.SegmentSize)
	if n < minSegments {
		n = minSegments
	}
	s := &Store{
		segSize: cfg.SegmentSize,
		live:    cfg.Live,
		segs:    make([]*segment, n),
		index:   make(map[uint64]loc),
	}
	for i := range s.segs {
		s.segs[i] = &segment{}
	}
	// Segment 0 opens the log; the rest are free (NAND ships erased).
	s.active = 0
	for i := n - 1; i >= 1; i-- {
		s.free = append(s.free, i)
	}
	return s, nil
}

// SegmentSize returns the erase-block size.
func (s *Store) SegmentSize() int64 { return s.segSize }

// Capacity returns the store capacity (whole segments).
func (s *Store) Capacity() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.segs)) * s.segSize
}

// Write appends one host object, invalidating any previous extent for
// the same key. data may be nil for extent-only callers; when present
// its length must equal size. It reports false — with no state change
// beyond invalidating the stale extent — for non-positive or oversize
// objects, or if the collector cannot free a segment.
func (s *Store) Write(key uint64, size int64, data []byte) bool {
	return s.write(key, size, data, true)
}

// Restore appends one object without charging the host-write counters:
// the rebuild path after a snapshot restore re-materializes residency
// the device already paid for in its previous life, so counting it
// would distort the measured WAF with a phantom write burst.
func (s *Store) Restore(key uint64, size int64) bool {
	return s.write(key, size, nil, false)
}

func (s *Store) write(key uint64, size int64, data []byte, host bool) bool {
	if data != nil && int64(len(data)) != size {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.index[key]; ok {
		s.markDead(l)
		delete(s.index, key)
	}
	if size <= 0 || size > s.segSize {
		s.oversize++
		return false
	}
	if !s.appendObj(key, size, data, true) {
		s.dropped++
		return false
	}
	if host {
		s.hostBytes += size
	}
	return true
}

// appendObj lands one extent at the log head, rolling the head to a
// fresh segment when the object does not fit. gc allows the roll to
// run the collector; the collector's own relocations pass false and
// draw on the reserve instead — collection must never reenter itself.
// Caller holds mu.
func (s *Store) appendObj(key uint64, size int64, data []byte, gc bool) bool {
	head := s.segs[s.active]
	if head.used+size > s.segSize {
		next, ok := s.allocSegment(gc)
		if !ok {
			return false
		}
		// Seal the head by its current id, not the head pointer captured
		// above: collection inside allocSegment relocates survivors, and
		// those relocations may themselves roll the log head.
		s.segs[s.active].sealed = true
		s.active = next
		head = s.segs[s.active]
	}
	if data != nil {
		if head.buf == nil {
			head.buf = make([]byte, s.segSize)
		}
		copy(head.buf[head.used:], data)
	}
	head.objs = append(head.objs, obj{key: key, off: head.used, size: size, hasData: data != nil})
	s.index[key] = loc{seg: s.active, slot: len(head.objs) - 1}
	head.used += size
	head.live += size
	return true
}

// allocSegment returns a free segment id, running the collector when
// the pool is empty (gc false skips collection — the relocation path,
// which lands in the segment its own collection just erased). Caller
// holds mu.
func (s *Store) allocSegment(gc bool) (int, bool) {
	// Collect until a segment is free, bounded by the segment count so a
	// store with nothing reclaimable cannot spin. Each round nets the
	// victim's dead bytes; the loop runs more than once only when the
	// victim was nearly full of survivors.
	for tries := 0; gc && len(s.free) == 0 && tries < len(s.segs); tries++ {
		before := s.erases
		s.collect()
		if s.erases == before {
			break // no victim; fall through to the failure path
		}
	}
	if len(s.free) == 0 {
		return 0, false
	}
	id := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	seg := s.segs[id]
	seg.sealed = false
	seg.objs = seg.objs[:0]
	seg.used, seg.live = 0, 0
	return id, true
}

// collect runs one greedy collection: refresh liveness against the
// policy, pick the sealed segment with the fewest live bytes, stash
// the survivors, erase the block, and re-append the survivors to the
// log head — which may be the block just erased, so collection makes
// forward progress with zero standing free segments. Caller holds mu.
func (s *Store) collect() {
	victim := -1
	var victimLive int64
	for id, seg := range s.segs {
		if id == s.active || !seg.sealed {
			continue
		}
		s.refreshLiveness(id)
		if victim == -1 || seg.live < victimLive {
			victim, victimLive = id, seg.live
		}
	}
	if victim == -1 {
		return
	}
	seg := s.segs[victim]
	type stashed struct {
		key  uint64
		size int64
		data []byte
	}
	var keep []stashed
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		st := stashed{key: o.key, size: o.size}
		if o.hasData {
			st.data = append([]byte(nil), seg.buf[o.off:o.off+o.size]...)
		}
		keep = append(keep, st)
		// The survivor's index entry dangles once the block is erased;
		// the re-append below rebuilds it.
		delete(s.index, o.key)
	}
	s.eraseSegment(victim)
	for _, st := range keep {
		// Relocation rides the same append path as host writes — that is
		// the amplification — but lands in gcBytes, not hostBytes, and
		// must not reenter the collector (the erased victim is free for
		// it to roll onto).
		if s.appendObj(st.key, st.size, st.data, false) {
			s.gcBytes += st.size
			s.relocations++
		} else {
			// No room anywhere: the object is lost from flash (the cache
			// above re-fetches on demand). Sized stores never hit this.
			s.dropped++
		}
	}
}

// refreshLiveness reconciles one segment's extents with the policy:
// objects the policy evicted since their append are marked dead so the
// victim choice and the relocation pass see true liveness. Caller
// holds mu.
func (s *Store) refreshLiveness(id int) {
	if s.live == nil {
		return
	}
	seg := s.segs[id]
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		if cur, ok := s.index[o.key]; !ok || cur != (loc{seg: id, slot: slot}) {
			// Stale extent never marked (defensive; markDead keeps these
			// in sync on the overwrite path).
			o.dead = true
			seg.live -= o.size
			continue
		}
		if !s.live(o.key) {
			o.dead = true
			seg.live -= o.size
			delete(s.index, o.key)
		}
	}
}

// eraseSegment wipes one block and returns it to the free pool,
// charging the erase counters. Caller holds mu.
func (s *Store) eraseSegment(id int) {
	seg := s.segs[id]
	seg.objs = seg.objs[:0]
	seg.used, seg.live = 0, 0
	seg.sealed = false
	seg.erases++
	s.erases++
	s.free = append(s.free, id)
}

// markDead invalidates one extent. Caller holds mu.
func (s *Store) markDead(l loc) {
	seg := s.segs[l.seg]
	o := &seg.objs[l.slot]
	if !o.dead {
		o.dead = true
		seg.live -= o.size
	}
}

// Invalidate drops key's extent (overwrite-by-delete, or an eager
// eviction callback for callers that have one). It reports whether the
// key was present.
func (s *Store) Invalidate(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[key]
	if !ok {
		return false
	}
	s.markDead(l)
	delete(s.index, key)
	return true
}

// Contains reports whether key has a live extent.
func (s *Store) Contains(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Read returns key's payload bytes (a copy) and its size. data is nil
// for extents written without payloads.
func (s *Store) Read(key uint64) (data []byte, size int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, found := s.index[key]
	if !found {
		return nil, 0, false
	}
	seg := s.segs[l.seg]
	o := seg.objs[l.slot]
	if o.hasData {
		data = make([]byte, o.size)
		copy(data, seg.buf[o.off:o.off+o.size])
	}
	return data, o.size, true
}

// Len returns the number of live extents in the index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Reset wipes all segments and the index without charging erase
// counters: it models the empty device a restarted daemon boots with
// (payloads are not persisted), so the subsequent Restore rebuild
// starts from clean blocks. Cumulative wear counters are preserved.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = make(map[uint64]loc)
	s.free = s.free[:0]
	for i := len(s.segs) - 1; i >= 1; i-- {
		seg := s.segs[i]
		seg.objs = seg.objs[:0]
		seg.used, seg.live = 0, 0
		seg.sealed = false
		s.free = append(s.free, i)
	}
	head := s.segs[0]
	head.objs = head.objs[:0]
	head.used, head.live = 0, 0
	head.sealed = false
	s.active = 0
}

// Stats returns the current wear counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		SegmentSize:  s.segSize,
		Segments:     len(s.segs),
		FreeSegments: len(s.free),
		HostBytes:    s.hostBytes,
		GCBytes:      s.gcBytes,
		Erases:       s.erases,
		Relocations:  s.relocations,
		Oversize:     s.oversize,
		Dropped:      s.dropped,
	}
	for i, seg := range s.segs {
		st.LiveBytes += seg.live
		if i == 0 || seg.erases < st.MinSegmentErases {
			st.MinSegmentErases = seg.erases
		}
		if seg.erases > st.MaxSegmentErases {
			st.MaxSegmentErases = seg.erases
		}
	}
	return st
}

// ErasesPerSegment returns each block's erase count, in segment order
// — the wear-leveling histogram.
func (s *Store) ErasesPerSegment() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.segs))
	for i, seg := range s.segs {
		out[i] = seg.erases
	}
	return out
}
