// Package flash implements a log-structured flash store: the device
// layer under the serving engine that actually holds cached object
// payloads and pays real erase-block costs, instead of assuming a
// hand-picked write amplification factor.
//
// The layout is the one production SSD caches use (Flashield, RIPQ):
// the store's capacity is divided into fixed-size segments mapped onto
// erase blocks. Writes append to the head segment of a log; an object
// index maps key -> (segment, offset, length). An object dies when it
// is overwritten, explicitly invalidated, or — lazily — when the
// composed replacement policy no longer considers it resident (the
// Live callback). Dead space is reclaimed by a greedy garbage
// collector: when the free-segment pool runs low it picks the sealed
// segment with the fewest live bytes, relocates the survivors to the
// log head, and erases the block. Those relocations are exactly where
// GC-induced write amplification comes from, so the store measures it
// instead of guessing:
//
//	WAF = (host bytes + relocated bytes) / host bytes
//
// plus erase counts per block, which ssd.Endurance turns into a live
// lifetime estimate (Endurance.WithMeasuredWAF).
//
// Below the store sits a Device — the raw program/read/erase seam.
// Real NAND fails: reads come back uncorrectable, programs and erases
// fail as blocks wear out. The store defends itself the way an SSD
// FTL does: every extent is written as a checksummed record and
// verified on read; a failed program or erase retires the block into
// a finite spare pool, relocating its live extents; a scrub pass
// (ScrubStep) walks sealed segments and drops extents whose checksums
// no longer verify, so silent corruption is found before a client
// asks for it. When retirements exhaust the spare pool the device is
// end-of-life (Exhausted) and the serving layer flips unready.
//
// A Store is safe for concurrent use; the serving stack runs one store
// per engine shard, so the single mutex shards with the engines.
package flash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// minSegments is the smallest segment count a store operates with: the
// active head plus at least three more so the collector has sealed
// segments to choose between.
const minSegments = 4

// recHeaderSize is the per-extent record header programmed to the
// device ahead of the payload: key (8 bytes LE) + logical size (8
// bytes LE). Header bytes are accounted like NAND out-of-band spare
// area — they do not consume the logical segment budget, only the
// device's physical image.
const recHeaderSize = 16

// Sentinel errors for the write and read paths.
var (
	// ErrOversize rejects writes that cannot fit in one erase block
	// (and, with the same sentinel, non-positive sizes). The stale
	// extent for the key, if any, is still invalidated.
	ErrOversize = errors.New("flash: object exceeds one erase block")
	// ErrNoSpace rejects writes when the collector cannot free a
	// segment — a store sized with sane overprovisioning never returns
	// this.
	ErrNoSpace = errors.New("flash: no free segment")
	// ErrNotFound reports a key with no live extent.
	ErrNotFound = errors.New("flash: extent not found")
	// ErrUncorrectable reports a device read failure (uncorrectable
	// ECC, in real-NAND terms). The extent is dropped.
	ErrUncorrectable = errors.New("flash: uncorrectable read")
	// ErrCorrupt reports an extent whose stored checksum no longer
	// matches its bytes (silent media corruption). The extent is
	// dropped.
	ErrCorrupt = errors.New("flash: extent checksum mismatch")
)

// Device is the raw byte-storage seam under the store: NAND-shaped
// program/read/erase over fixed segment (erase-block) ids. Offsets are
// physical offsets within a segment's image, which may exceed the
// logical segment size by per-extent header overhead (see
// recHeaderSize). Implementations are called only under the store's
// mutex and need not be concurrency-safe on their own.
type Device interface {
	// Program writes p at physical offset off in segment seg. A failed
	// program retires the block.
	Program(seg int, off int64, p []byte) error
	// Read fills p from physical offset off in segment seg. A failed
	// read is an uncorrectable extent.
	Read(seg int, off int64, p []byte) error
	// Erase wipes segment seg. A failed erase retires the block.
	Erase(seg int) error
}

// memDevice is the default in-RAM Device: one lazily grown byte slice
// per segment.
type memDevice struct {
	segs [][]byte
}

// NewMemDevice builds the default in-memory device with the given
// segment count. Exported so fault-injecting wrappers (faults.Device)
// can interpose on a real byte store.
func NewMemDevice(segments int) Device {
	return &memDevice{segs: make([][]byte, segments)}
}

func (d *memDevice) Program(seg int, off int64, p []byte) error {
	if seg < 0 || seg >= len(d.segs) || off < 0 {
		return fmt.Errorf("flash: program out of range: segment %d offset %d", seg, off)
	}
	need := off + int64(len(p))
	if int64(len(d.segs[seg])) < need {
		grown := make([]byte, need)
		copy(grown, d.segs[seg])
		d.segs[seg] = grown
	}
	copy(d.segs[seg][off:], p)
	return nil
}

func (d *memDevice) Read(seg int, off int64, p []byte) error {
	if seg < 0 || seg >= len(d.segs) || off < 0 || off+int64(len(p)) > int64(len(d.segs[seg])) {
		return fmt.Errorf("flash: read out of range: segment %d offset %d len %d", seg, off, len(p))
	}
	copy(p, d.segs[seg][off:])
	return nil
}

func (d *memDevice) Erase(seg int) error {
	if seg < 0 || seg >= len(d.segs) {
		return fmt.Errorf("flash: erase out of range: segment %d", seg)
	}
	d.segs[seg] = d.segs[seg][:0]
	return nil
}

// Config sizes one store.
type Config struct {
	// SegmentSize is the erase-block size in bytes. Objects larger than
	// one segment are not stored (see Stats.Oversize).
	SegmentSize int64
	// Capacity is the device capacity in bytes, rounded up to whole
	// segments (at least minSegments). Size it above the composed
	// policy's capacity — the overprovisioned slack is what gives the
	// collector dead space to reclaim; a store whose live bytes approach
	// its capacity grinds into relocation storms exactly like a real
	// device at 100% utilization.
	Capacity int64
	// Live reports whether a key is still logically live — the composed
	// replacement policy's Contains. The collector consults it before
	// relocating, so policy evictions invalidate lazily without an
	// eviction callback threaded through every policy. nil means objects
	// stay live until overwritten or explicitly invalidated.
	Live func(key uint64) bool
	// Device is the byte-storage seam; nil uses the in-memory default.
	// Fault-drill and test callers wrap NewMemDevice in faults.Device.
	Device Device
	// SpareBlocks is how many block retirements the device absorbs
	// before it is end-of-life (Exhausted). Zero derives a default of
	// 1/8 of the segment count (at least one) — the reserve a real
	// device carves from its overprovisioned slack; engine.AttachFlash
	// sizes it from the actual overprovision instead. Negative is
	// rejected.
	SpareBlocks int
}

// Stats is a point-in-time snapshot of the store's wear counters.
type Stats struct {
	// SegmentSize and Segments describe the fixed layout.
	SegmentSize int64
	Segments    int
	// FreeSegments counts erased segments ready to become the log head.
	FreeSegments int
	// HostBytes counts bytes the caller wrote (admissions); relocations
	// are excluded — they are the amplification, not the cause.
	HostBytes int64
	// GCBytes counts bytes relocated to salvage live objects out of
	// collected or retired segments.
	GCBytes int64
	// Erases counts segment erasures across all blocks.
	Erases int64
	// MinSegmentErases and MaxSegmentErases bound the per-block erase
	// distribution (wear leveling inspection).
	MinSegmentErases int64
	MaxSegmentErases int64
	// LiveBytes is the store's live-byte estimate: exact with respect to
	// overwrites and explicit invalidation, an upper bound with respect
	// to lazy policy evictions (those are discovered at collection).
	LiveBytes int64
	// Relocations counts objects moved out of collected or retired
	// segments.
	Relocations int64
	// Oversize counts writes rejected for exceeding one segment.
	Oversize int64
	// Dropped counts objects lost because collection could free no
	// segment or because a relocation off a failing block could not
	// read them back — a healthy, sanely overprovisioned store never
	// increments this.
	Dropped int64
	// ReadErrors counts device read failures (uncorrectable extents).
	ReadErrors int64
	// CorruptExtents counts extents dropped for checksum mismatch,
	// whether found by a client read, the scrubber, or a relocation.
	CorruptExtents int64
	// RetiredBlocks counts segments retired after a failed program or
	// erase; SpareBlocks is the retirement budget and SpareHeadroom
	// what remains of it (never negative).
	RetiredBlocks int64
	SpareBlocks   int64
	SpareHeadroom int64
	// ScrubbedSegments counts scrub passes over individual segments
	// (cumulative, so it exceeds Segments once the scrubber laps).
	ScrubbedSegments int64
	// Exhausted reports device end-of-life: retirements have consumed
	// the whole spare pool.
	Exhausted bool
}

// WAF returns the measured write amplification factor,
// (host + relocated) / host. An unwritten store reports 1 (the floor:
// a log-structured device never amplifies below the host stream).
func (s Stats) WAF() float64 {
	if s.HostBytes == 0 {
		return 1
	}
	return float64(s.HostBytes+s.GCBytes) / float64(s.HostBytes)
}

// loc addresses one live object: a segment and a slot in its append
// order.
type loc struct {
	seg  int
	slot int
}

// obj is one appended extent inside a segment.
type obj struct {
	key  uint64
	size int64 // logical size (what the cache above accounts)
	// physOff/physLen place the checksummed record (header + optional
	// payload) in the segment's device image.
	physOff int64
	physLen int64
	crc     uint32
	// hasData marks extents whose payload bytes were programmed;
	// extent-only objects carry a header record alone.
	hasData bool
	dead    bool
}

// segment is one erase block.
type segment struct {
	objs   []obj
	used   int64 // logical write head (includes dead extents until erase)
	phys   int64 // physical write head in the device image
	live   int64 // live-byte estimate, see Stats.LiveBytes
	sealed bool
	erases int64
	// retired marks a bad block: a program or erase failed on it, its
	// survivors were relocated, and it never rejoins the free pool.
	retired bool
}

// relocObj is one extent queued for relocation off a retiring block.
type relocObj struct {
	key     uint64
	size    int64
	data    []byte
	hasData bool
}

// Store is a log-structured flash store. Safe for concurrent use.
type Store struct {
	segSize int64
	live    func(key uint64) bool
	dev     Device
	spare   int64
	// obsv is the optional latency observer (see Observer); atomic so
	// attachment may race serving traffic.
	obsv atomic.Pointer[Observer]

	mu      sync.Mutex
	segs    []*segment
	free    []int // erased segment ids, LIFO
	active  int   // log head segment id
	index   map[uint64]loc
	relocq  []relocObj // extents awaiting relocation off retired blocks
	scrubAt int        // next segment the scrubber visits

	hostBytes      int64
	gcBytes        int64
	erases         int64
	relocations    int64
	oversize       int64
	dropped        int64
	readErrors     int64
	corruptExtents int64
	retired        int64
	scrubbed       int64
}

// New builds a store. Capacity is rounded up to whole segments and to
// the minimum segment count the collector needs.
func New(cfg Config) (*Store, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("flash: segment size must be positive, got %d", cfg.SegmentSize)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("flash: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.SpareBlocks < 0 {
		return nil, fmt.Errorf("flash: spare blocks must be non-negative, got %d", cfg.SpareBlocks)
	}
	n := int((cfg.Capacity + cfg.SegmentSize - 1) / cfg.SegmentSize)
	if n < minSegments {
		n = minSegments
	}
	spare := int64(cfg.SpareBlocks)
	if spare == 0 {
		spare = int64(n / 8)
		if spare < 1 {
			spare = 1
		}
	}
	dev := cfg.Device
	if dev == nil {
		dev = NewMemDevice(n)
	}
	s := &Store{
		segSize: cfg.SegmentSize,
		live:    cfg.Live,
		dev:     dev,
		spare:   spare,
		segs:    make([]*segment, n),
		index:   make(map[uint64]loc),
	}
	for i := range s.segs {
		s.segs[i] = &segment{}
	}
	// Segment 0 opens the log; the rest are free (NAND ships erased).
	s.active = 0
	for i := n - 1; i >= 1; i-- {
		s.free = append(s.free, i)
	}
	return s, nil
}

// SegmentSize returns the erase-block size.
func (s *Store) SegmentSize() int64 { return s.segSize }

// Capacity returns the store capacity (whole segments).
func (s *Store) Capacity() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.segs)) * s.segSize
}

// Exhausted reports device end-of-life: block retirements have
// consumed the whole spare pool. The store keeps limping along (it
// still serves reads and attempts writes on surviving blocks), but the
// serving layer should stop routing traffic to it (/readyz flips 503).
func (s *Store) Exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired >= s.spare
}

// Write appends one host object, invalidating any previous extent for
// the same key. data may be nil for extent-only callers; when present
// its length must equal size. Oversize (or non-positive) objects are
// rejected with ErrOversize — with no state change beyond invalidating
// the stale extent — and writes the collector cannot place return
// ErrNoSpace.
func (s *Store) Write(key uint64, size int64, data []byte) error {
	if o := s.obsv.Load(); o != nil {
		start := o.Now()
		err := s.write(key, size, data, true)
		o.Program.Record(int64(o.Now().Sub(start)))
		return err
	}
	return s.write(key, size, data, true)
}

// Restore appends one object without charging the host-write counters:
// the rebuild path after a snapshot restore re-materializes residency
// the device already paid for in its previous life, so counting it
// would distort the measured WAF with a phantom write burst.
func (s *Store) Restore(key uint64, size int64) error {
	return s.write(key, size, nil, false)
}

func (s *Store) write(key uint64, size int64, data []byte, host bool) error {
	if data != nil && int64(len(data)) != size {
		return fmt.Errorf("flash: data length %d does not match size %d", len(data), size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.index[key]; ok {
		s.markDead(l)
		delete(s.index, key)
	}
	if size <= 0 || size > s.segSize {
		s.oversize++
		return ErrOversize
	}
	ok := s.appendObj(key, size, data, data != nil, true)
	// A program-fail retirement along the way queued that block's live
	// extents; move them before the caller observes the store.
	s.drainReloc()
	if !ok {
		s.dropped++
		return ErrNoSpace
	}
	if host {
		s.hostBytes += size
	}
	return nil
}

// encodeRecord lays out the device record for one extent: the 16-byte
// header plus the payload, if any.
func encodeRecord(key uint64, size int64, data []byte) []byte {
	rec := make([]byte, recHeaderSize+len(data))
	binary.LittleEndian.PutUint64(rec[0:8], key)
	binary.LittleEndian.PutUint64(rec[8:16], uint64(size))
	copy(rec[recHeaderSize:], data)
	return rec
}

// appendObj lands one extent at the log head, rolling the head to a
// fresh segment when the object does not fit (or the head has been
// retired under it). A failed program retires the head and retries on
// a fresh one, bounded by the segment count. gc allows the roll to
// run the collector; the collector's own relocations pass false and
// draw on the reserve instead — collection must never reenter itself.
// Caller holds mu.
func (s *Store) appendObj(key uint64, size int64, data []byte, hasData, gc bool) bool {
	rec := encodeRecord(key, size, data)
	for attempt := 0; attempt <= len(s.segs); attempt++ {
		head := s.segs[s.active]
		if head.retired || head.used+size > s.segSize {
			next, ok := s.allocSegment(gc)
			if !ok {
				return false
			}
			// Seal the head by its current id, not the head pointer captured
			// above: collection inside allocSegment relocates survivors, and
			// those relocations may themselves roll the log head.
			s.segs[s.active].sealed = true
			s.active = next
			head = s.segs[s.active]
		}
		//lint:allow errsink retireSegment charges the retirement counters for this media failure
		if err := s.dev.Program(s.active, head.phys, rec); err != nil {
			// Bad block: retire it (relocating whatever was already on
			// it) and try again on a fresh head.
			s.retireSegment(s.active)
			continue
		}
		head.objs = append(head.objs, obj{
			key:     key,
			size:    size,
			physOff: head.phys,
			physLen: int64(len(rec)),
			crc:     crc32.ChecksumIEEE(rec),
			hasData: hasData,
		})
		s.index[key] = loc{seg: s.active, slot: len(head.objs) - 1}
		head.used += size
		head.phys += int64(len(rec))
		head.live += size
		return true
	}
	return false
}

// allocSegment returns a free segment id, running the collector when
// the pool is empty (gc false skips collection — the relocation path,
// which lands in the segment its own collection just erased). Caller
// holds mu.
func (s *Store) allocSegment(gc bool) (int, bool) {
	// Collect until a segment is free, bounded by the segment count so a
	// store with nothing reclaimable cannot spin. Each round nets the
	// victim's dead bytes; the loop runs more than once only when the
	// victim was nearly full of survivors. Progress is an erase or a
	// retirement — an erase-fail round frees nothing but removes the
	// victim from the candidate set, so the next round tries another.
	for tries := 0; gc && len(s.free) == 0 && tries < len(s.segs); tries++ {
		before := s.erases + s.retired
		s.collect()
		if s.erases+s.retired == before {
			break // no victim; fall through to the failure path
		}
	}
	if len(s.free) == 0 {
		return 0, false
	}
	id := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	seg := s.segs[id]
	seg.sealed = false
	seg.objs = seg.objs[:0]
	seg.used, seg.live, seg.phys = 0, 0, 0
	return id, true
}

// collect runs one greedy collection pass, timing it into the GC
// histogram when an observer is attached. Caller holds mu.
func (s *Store) collect() {
	o := s.obsv.Load()
	if o == nil {
		s.collectLocked()
		return
	}
	start := o.Now()
	s.collectLocked()
	o.GC.Record(int64(o.Now().Sub(start)))
}

// collectLocked is the collection pass itself: refresh liveness against
// the policy, pick the sealed segment with the fewest live bytes, stash
// the survivors, erase the block, and re-append the survivors to the
// log head — which may be the block just erased, so collection makes
// forward progress with zero standing free segments. Caller holds mu.
func (s *Store) collectLocked() {
	victim := -1
	var victimLive int64
	for id, seg := range s.segs {
		if id == s.active || !seg.sealed || seg.retired {
			continue
		}
		s.refreshLiveness(id)
		if victim == -1 || seg.live < victimLive {
			victim, victimLive = id, seg.live
		}
	}
	if victim == -1 {
		return
	}
	seg := s.segs[victim]
	var keep []relocObj
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		// Read the record back through the device and verify it before
		// relocating: a survivor that cannot be read, or whose checksum
		// fails, is dropped here instead of being copied forward as
		// corruption. readRecord charges the error counters.
		st, err := s.stashObj(victim, o)
		if err != nil {
			o.dead = true
			seg.live -= o.size
			delete(s.index, o.key)
			continue
		}
		keep = append(keep, st)
		// The survivor's index entry dangles once the block is erased;
		// the re-append below rebuilds it. Mark it dead so a retirement
		// racing in between cannot stash it a second time.
		o.dead = true
		seg.live -= o.size
		delete(s.index, o.key)
	}
	if !s.eraseSegment(victim) {
		// The erase failed and the victim was retired; its survivors are
		// already stashed in keep, so fall through and place them.
		_ = victim
	}
	for _, st := range keep {
		// Relocation rides the same append path as host writes — that is
		// the amplification — but lands in gcBytes, not hostBytes, and
		// must not reenter the collector (the erased victim is free for
		// it to roll onto).
		if s.appendObj(st.key, st.size, st.data, st.hasData, false) {
			s.gcBytes += st.size
			s.relocations++
		} else {
			// No room anywhere: the object is lost from flash (the cache
			// above re-fetches on demand). Sized stores never hit this.
			s.dropped++
		}
	}
}

// stashObj reads one live extent back from the device, verifies it,
// and packages it for relocation. Caller holds mu.
func (s *Store) stashObj(id int, o *obj) (relocObj, error) {
	rec, err := s.readRecord(id, o)
	if err != nil {
		return relocObj{}, err
	}
	st := relocObj{key: o.key, size: o.size, hasData: o.hasData}
	if o.hasData {
		st.data = append([]byte(nil), rec[recHeaderSize:]...)
	}
	return st, nil
}

// readRecord fetches and verifies one extent's record from the
// device, charging the read-error and corruption counters on failure.
// Caller holds mu.
func (s *Store) readRecord(id int, o *obj) ([]byte, error) {
	rec := make([]byte, o.physLen)
	if err := s.dev.Read(id, o.physOff, rec); err != nil {
		s.readErrors++
		return nil, fmt.Errorf("%w: %v", ErrUncorrectable, err)
	}
	if crc32.ChecksumIEEE(rec) != o.crc {
		s.corruptExtents++
		return nil, ErrCorrupt
	}
	return rec, nil
}

// retireSegment permanently removes a bad block from service: it never
// rejoins the free pool, its live extents are queued for relocation,
// and the spare pool shrinks by one. Caller holds mu.
func (s *Store) retireSegment(id int) {
	seg := s.segs[id]
	if seg.retired {
		return
	}
	seg.retired = true
	seg.sealed = true
	s.retired++
	for i, f := range s.free {
		if f == id {
			s.free = append(s.free[:i], s.free[i+1:]...)
			break
		}
	}
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		if cur, ok := s.index[o.key]; !ok || cur != (loc{seg: id, slot: slot}) {
			continue
		}
		o.dead = true
		seg.live -= o.size
		delete(s.index, o.key)
		st, err := s.stashObj(id, o)
		if err != nil {
			// Unreadable or corrupt on the way out: the extent is lost.
			s.dropped++
			continue
		}
		s.relocq = append(s.relocq, st)
	}
}

// drainReloc places extents queued by block retirements. Placement can
// itself hit a bad block and queue more; the loop runs until the queue
// is empty. Caller holds mu.
func (s *Store) drainReloc() {
	for len(s.relocq) > 0 {
		st := s.relocq[0]
		s.relocq = s.relocq[1:]
		if s.appendObj(st.key, st.size, st.data, st.hasData, true) {
			s.gcBytes += st.size
			s.relocations++
		} else {
			s.dropped++
		}
	}
}

// refreshLiveness reconciles one segment's extents with the policy:
// objects the policy evicted since their append are marked dead so the
// victim choice and the relocation pass see true liveness. Caller
// holds mu.
func (s *Store) refreshLiveness(id int) {
	if s.live == nil {
		return
	}
	seg := s.segs[id]
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		if cur, ok := s.index[o.key]; !ok || cur != (loc{seg: id, slot: slot}) {
			// Stale extent never marked (defensive; markDead keeps these
			// in sync on the overwrite path).
			o.dead = true
			seg.live -= o.size
			continue
		}
		if !s.live(o.key) {
			o.dead = true
			seg.live -= o.size
			delete(s.index, o.key)
		}
	}
}

// eraseSegment wipes one block and returns it to the free pool,
// charging the erase counters. A failed erase retires the block
// instead and reports false. Caller holds mu.
func (s *Store) eraseSegment(id int) bool {
	seg := s.segs[id]
	//lint:allow errsink retireSegment charges the retirement counters for this media failure
	if err := s.dev.Erase(id); err != nil {
		s.retireSegment(id)
		return false
	}
	seg.objs = seg.objs[:0]
	seg.used, seg.live, seg.phys = 0, 0, 0
	seg.sealed = false
	seg.erases++
	s.erases++
	s.free = append(s.free, id)
	return true
}

// markDead invalidates one extent. Caller holds mu.
func (s *Store) markDead(l loc) {
	seg := s.segs[l.seg]
	o := &seg.objs[l.slot]
	if !o.dead {
		o.dead = true
		seg.live -= o.size
	}
}

// Invalidate drops key's extent (overwrite-by-delete, or an eager
// eviction callback for callers that have one). It reports whether the
// key was present.
func (s *Store) Invalidate(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[key]
	if !ok {
		return false
	}
	s.markDead(l)
	delete(s.index, key)
	return true
}

// Contains reports whether key has a live extent.
func (s *Store) Contains(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// ReadExtent returns key's payload bytes (a copy; nil for extents
// written without payloads) and its logical size, verifying the
// stored record against the device on the way. It returns ErrNotFound
// for absent keys; ErrUncorrectable or ErrCorrupt report a media
// failure, after which the extent is dropped — the caller sees a miss
// on retry, never corrupt bytes.
func (s *Store) ReadExtent(key uint64) (data []byte, size int64, err error) {
	if o := s.obsv.Load(); o != nil && o.Sampler.Hit() {
		start := o.Now()
		data, size, err = s.readExtent(key)
		o.Read.Record(int64(o.Now().Sub(start)))
		return data, size, err
	}
	return s.readExtent(key)
}

// readExtent is ReadExtent without the timing wrapper.
func (s *Store) readExtent(key uint64) (data []byte, size int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, found := s.index[key]
	if !found {
		return nil, 0, ErrNotFound
	}
	seg := s.segs[l.seg]
	o := &seg.objs[l.slot]
	rec, err := s.readRecord(l.seg, o)
	if err != nil {
		s.markDead(l)
		delete(s.index, key)
		return nil, 0, err
	}
	if o.hasData {
		data = append([]byte(nil), rec[recHeaderSize:]...)
	}
	return data, o.size, nil
}

// Read is the pre-verification read shape: payload, size, and a found
// flag. A media failure reads as a miss.
func (s *Store) Read(key uint64) (data []byte, size int64, ok bool) {
	data, size, err := s.ReadExtent(key)
	return data, size, err == nil
}

// ScrubSegment verifies every live extent in one segment against the
// device, dropping (via the same invalidation path as Invalidate) any
// whose record fails to read or checksum. It returns the extents
// scanned and dropped. Free, retired, and out-of-range segments scan
// zero extents.
func (s *Store) ScrubSegment(id int) (scanned, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubSegment(id)
}

// scrubSegment is ScrubSegment under mu.
func (s *Store) scrubSegment(id int) (scanned, dropped int) {
	if id < 0 || id >= len(s.segs) {
		return 0, 0
	}
	seg := s.segs[id]
	if seg.retired {
		return 0, 0
	}
	for slot := range seg.objs {
		o := &seg.objs[slot]
		if o.dead {
			continue
		}
		if cur, ok := s.index[o.key]; !ok || cur != (loc{seg: id, slot: slot}) {
			continue
		}
		scanned++
		if _, err := s.readRecord(id, o); err != nil {
			o.dead = true
			seg.live -= o.size
			delete(s.index, o.key)
			dropped++
		}
	}
	s.scrubbed++
	return scanned, dropped
}

// ScrubStep advances the background scrub by one segment: it walks the
// segment ring from where the last step left off, scrubs the first
// sealed, non-retired, non-active segment it finds, and returns that
// segment's id with the scan counts. It returns segment -1 when no
// segment is currently scrubbable (nothing sealed yet). One ScrubStep
// per scrub interval keeps the pass gentle; len(segs) steps cover the
// whole device.
func (s *Store) ScrubStep() (segment, scanned, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.segs); i++ {
		id := (s.scrubAt + i) % len(s.segs)
		seg := s.segs[id]
		if id == s.active || !seg.sealed || seg.retired {
			continue
		}
		s.scrubAt = (id + 1) % len(s.segs)
		scanned, dropped = s.scrubSegment(id)
		return id, scanned, dropped
	}
	return -1, 0, 0
}

// Len returns the number of live extents in the index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Reset wipes all segments and the index without charging erase
// counters: it models the empty device a restarted daemon boots with
// (payloads are not persisted), so the subsequent Restore rebuild
// starts from clean blocks. Cumulative wear counters are preserved,
// and so are retired blocks — bad NAND stays bad across a process
// restart.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = make(map[uint64]loc)
	s.free = s.free[:0]
	s.relocq = nil
	active := -1
	for i, seg := range s.segs {
		seg.objs = seg.objs[:0]
		seg.used, seg.live, seg.phys = 0, 0, 0
		if seg.retired {
			continue
		}
		seg.sealed = false
		if active == -1 {
			active = i
		}
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		if i != active && !s.segs[i].retired {
			s.free = append(s.free, i)
		}
	}
	if active == -1 {
		// Every block is retired; leave the head pointing at a retired
		// segment — appendObj rolls off it and every write fails, which
		// is the truth about this device.
		active = 0
	}
	s.active = active
}

// Stats returns the current wear counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		SegmentSize:      s.segSize,
		Segments:         len(s.segs),
		FreeSegments:     len(s.free),
		HostBytes:        s.hostBytes,
		GCBytes:          s.gcBytes,
		Erases:           s.erases,
		Relocations:      s.relocations,
		Oversize:         s.oversize,
		Dropped:          s.dropped,
		ReadErrors:       s.readErrors,
		CorruptExtents:   s.corruptExtents,
		RetiredBlocks:    s.retired,
		SpareBlocks:      s.spare,
		ScrubbedSegments: s.scrubbed,
		Exhausted:        s.retired >= s.spare,
	}
	st.SpareHeadroom = st.SpareBlocks - st.RetiredBlocks
	if st.SpareHeadroom < 0 {
		st.SpareHeadroom = 0
	}
	for i, seg := range s.segs {
		st.LiveBytes += seg.live
		if i == 0 || seg.erases < st.MinSegmentErases {
			st.MinSegmentErases = seg.erases
		}
		if seg.erases > st.MaxSegmentErases {
			st.MaxSegmentErases = seg.erases
		}
	}
	return st
}

// ErasesPerSegment returns each block's erase count, in segment order
// — the wear-leveling histogram.
func (s *Store) ErasesPerSegment() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.segs))
	for i, seg := range s.segs {
		out[i] = seg.erases
	}
	return out
}
