package flash

import (
	"sync/atomic"
	"testing"
)

// benchStore sizes a store so the collector runs hot: the live working
// set fills ~70% of the device, forcing steady relocation traffic.
func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := New(Config{SegmentSize: 64 << 10, Capacity: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const (
	benchObjSize = 4 << 10
	benchKeys    = 700 // 700 x 4KiB live in a 4MiB device ≈ 68% utilization
)

// BenchmarkFlashGC measures the write path with the collector engaged
// under concurrent writers — the race matrix runs it with -race at
// several GOMAXPROCS. It reports the measured WAF alongside the
// throughput so `make bench` lands device-level amplification in
// BENCH_serve.json.
func BenchmarkFlashGC(b *testing.B) {
	s := benchStore(b)
	var ctr atomic.Uint64
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine LCG over a shared key space: overwrites scatter
		// across segments so victims carry survivors.
		rng := ctr.Add(1) * 0x9E3779B97F4A7C15
		for pb.Next() {
			rng = rng*6364136223846793005 + 1442695040888963407
			s.Write((rng>>33)%benchKeys, benchObjSize, nil)
		}
	})
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(st.WAF(), "waf")
	if b.N > 0 {
		b.ReportMetric(float64(st.Erases)/float64(b.N), "erases/op")
	}
}

// BenchmarkFlashWriteNoGC is the same write path with the device sized
// so collection never runs — the floor the GC benchmark is compared
// against.
func BenchmarkFlashWriteNoGC(b *testing.B) {
	s, err := New(Config{SegmentSize: 64 << 10, Capacity: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	// 64MiB of 4KiB objects: wipe just before the device fills so the
	// collector never engages (counters are cumulative, WAF stays 1).
	const fill = (64 << 20) / benchObjSize * 9 / 10
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	rng := uint64(1)
	for i := 0; i < b.N; i++ {
		if i%fill == fill-1 {
			s.Reset()
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		// Unique keys: nothing ever dies, nothing ever collects.
		s.Write(rng, benchObjSize, nil)
	}
	b.StopTimer()
	b.ReportMetric(s.Stats().WAF(), "waf")
}
