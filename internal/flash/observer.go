package flash

import (
	"time"

	"otacache/internal/obs"
)

// Observer is the store's optional latency measurement plane: sampled
// extent-read timing (the serving hot path, every cache hit) and
// unsampled program and GC timing (orders of magnitude rarer). The
// clock is a plain func field rather than a faults.Clock because the
// dependency points the other way — faults wraps flash devices, so
// flash cannot import it; the serving layer passes its clock's Now
// method in, which keeps the detclock determinism story intact.
//
// All fields must be non-nil; use NewObserver.
type Observer struct {
	// Now is the injected clock read.
	Now func() time.Time
	// Sampler gates read-path timing (1-in-N); program and GC timing is
	// unconditional.
	Sampler *obs.Sampler
	// Read observes ReadExtent latency for sampled reads.
	Read *obs.Histogram
	// Program observes host Write latency (admission -> device program,
	// including any collection the append triggered).
	Program *obs.Histogram
	// GC observes one greedy collection pass (victim scan, survivor
	// relocation, erase).
	GC *obs.Histogram
}

// NewObserver builds an observer around the injected clock read.
// sampleEvery <= 1 times every read.
func NewObserver(now func() time.Time, sampleEvery int) *Observer {
	return &Observer{
		Now:     now,
		Sampler: obs.NewSampler(sampleEvery),
		Read:    obs.NewHistogram(),
		Program: obs.NewHistogram(),
		GC:      obs.NewHistogram(),
	}
}

// SetObserver attaches (or, with nil, detaches) the measurement plane.
// An atomic pointer because the daemon wires observability after
// assembly, racing live traffic.
func (s *Store) SetObserver(o *Observer) { s.obsv.Store(o) }

// Observer returns the attached measurement plane (nil when none).
func (s *Store) Observer() *Observer { return s.obsv.Load() }
