package flash

import (
	"bytes"
	"errors"
	"testing"
)

// scriptDev wraps the in-memory device with call-indexed failure
// hooks — the package-local stand-in for faults.Device (which lives
// above this package and cannot be imported from its tests).
type scriptDev struct {
	inner                            Device
	reads, programs, erases          int
	failRead, failProgram, failErase func(call int) bool
}

func newScriptDev(segments int) *scriptDev {
	return &scriptDev{inner: NewMemDevice(segments)}
}

func (d *scriptDev) Read(seg int, off int64, p []byte) error {
	call := d.reads
	d.reads++
	if d.failRead != nil && d.failRead(call) {
		return errors.New("scripted uncorrectable read")
	}
	return d.inner.Read(seg, off, p)
}

func (d *scriptDev) Program(seg int, off int64, p []byte) error {
	call := d.programs
	d.programs++
	if d.failProgram != nil && d.failProgram(call) {
		return errors.New("scripted program failure")
	}
	return d.inner.Program(seg, off, p)
}

func (d *scriptDev) Erase(seg int) error {
	call := d.erases
	d.erases++
	if d.failErase != nil && d.failErase(call) {
		return errors.New("scripted erase failure")
	}
	return d.inner.Erase(seg)
}

// extentLoc digs one live extent's physical placement out of the store
// so tests can corrupt the exact device bytes under it.
func extentLoc(t *testing.T, s *Store, key uint64) (seg int, physOff, physLen int64) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[key]
	if !ok {
		t.Fatalf("key %d has no live extent", key)
	}
	o := s.segs[l.seg].objs[l.slot]
	return l.seg, o.physOff, o.physLen
}

// corruptByte flips one payload byte of key's record directly in the
// in-memory device image — silent media corruption.
func corruptByte(t *testing.T, s *Store, md *memDevice, key uint64) {
	t.Helper()
	seg, off, _ := extentLoc(t, s, key)
	md.segs[seg][off+recHeaderSize] ^= 0x01
}

// TestCorruptExtentDetectedOnRead pins the checksum path: a flipped
// payload byte turns the read into ErrCorrupt, the extent is dropped
// (the retry sees a miss, never the corrupt bytes), and the corruption
// counter advances exactly once.
func TestCorruptExtentDetectedOnRead(t *testing.T) {
	md := NewMemDevice(8).(*memDevice)
	s, err := New(Config{SegmentSize: 1024, Capacity: 8 * 1024, Device: md})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("checksummed payload bytes")
	if err := s.Write(1, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, s, md, 1)
	if _, _, err := s.ReadExtent(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadExtent on corrupt bytes: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := s.ReadExtent(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt extent not dropped: second read err = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.CorruptExtents != 1 || st.ReadErrors != 0 {
		t.Fatalf("CorruptExtents = %d ReadErrors = %d, want 1, 0", st.CorruptExtents, st.ReadErrors)
	}
}

// TestUncorrectableReadDropsExtent pins the device-error path: a
// failed device read surfaces as ErrUncorrectable, drops the extent,
// and charges ReadErrors.
func TestUncorrectableReadDropsExtent(t *testing.T) {
	sd := newScriptDev(8)
	s, err := New(Config{SegmentSize: 1024, Capacity: 8 * 1024, Device: sd})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, 100, nil); err != nil {
		t.Fatal(err)
	}
	sd.failRead = func(call int) bool { return call == 0 }
	if _, _, err := s.ReadExtent(1); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
	if s.Contains(1) {
		t.Fatal("uncorrectable extent still indexed")
	}
	st := s.Stats()
	if st.ReadErrors != 1 || st.CorruptExtents != 0 {
		t.Fatalf("ReadErrors = %d CorruptExtents = %d, want 1, 0", st.ReadErrors, st.CorruptExtents)
	}
}

// TestProgramFailRetiresBlock pins bad-block retirement on the write
// path: the failed program retires the head segment, relocates the
// extents already on it, and lands the write on a fresh block — the
// caller never sees the failure.
func TestProgramFailRetiresBlock(t *testing.T) {
	sd := newScriptDev(8)
	s, err := New(Config{SegmentSize: 1024, Capacity: 8 * 1024, Device: sd, SpareBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0xAA}, 100)
	if err := s.Write(1, 100, a); err != nil {
		t.Fatal(err)
	}
	// The next program fails: block 0 (holding key 1) retires.
	sd.failProgram = func(call int) bool { return call == 1 }
	if err := s.Write(2, 100, bytes.Repeat([]byte{0xBB}, 100)); err != nil {
		t.Fatalf("write across a program failure must succeed: %v", err)
	}
	st := s.Stats()
	if st.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", st.RetiredBlocks)
	}
	if st.Relocations != 1 || st.GCBytes != 100 {
		t.Fatalf("survivor not relocated: Relocations = %d GCBytes = %d", st.Relocations, st.GCBytes)
	}
	for _, k := range []uint64{1, 2} {
		data, _, err := s.ReadExtent(k)
		if err != nil {
			t.Fatalf("key %d unreadable after retirement: %v", k, err)
		}
		want := byte(0xAA)
		if k == 2 {
			want = 0xBB
		}
		if data[0] != want {
			t.Fatalf("key %d payload corrupted across retirement", k)
		}
	}
	if st.Exhausted {
		t.Fatal("one retirement against 4 spares must not exhaust the device")
	}
}

// TestEraseFailRetiresBlock pins retirement on the collection path: a
// victim whose erase fails is retired (not returned to the free pool)
// and its already-stashed survivors still land on the log head.
func TestEraseFailRetiresBlock(t *testing.T) {
	sd := newScriptDev(4)
	s, err := New(Config{SegmentSize: 100, Capacity: 400, Device: sd, SpareBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	sd.failErase = func(call int) bool { return call == 0 }
	// Overwrite churn through the whole device forces collection; the
	// first erase fails, retiring the victim mid-GC.
	for i := 0; i < 40; i++ {
		if err := s.Write(uint64(i%3), 60, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", st.RetiredBlocks)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 — erase-fail retirement must not lose objects", st.Dropped)
	}
	for k := uint64(0); k < 3; k++ {
		if !s.Contains(k) {
			t.Fatalf("key %d lost across erase-fail retirement", k)
		}
	}
}

// TestSpareExhaustion pins end-of-life semantics: the device reports
// Exhausted exactly when retirements consume the whole spare pool, and
// headroom counts down to zero on the way.
func TestSpareExhaustion(t *testing.T) {
	sd := newScriptDev(8)
	s, err := New(Config{SegmentSize: 100, Capacity: 800, Device: sd, SpareBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One-shot trigger: arm before a write, and exactly the next program
	// fails (retirement relocations afterwards proceed cleanly).
	failNext := false
	sd.failProgram = func(call int) bool {
		f := failNext
		failNext = false
		return f
	}
	if err := s.Write(1, 50, nil); err != nil {
		t.Fatal(err)
	}
	if s.Exhausted() {
		t.Fatal("healthy store reports Exhausted")
	}
	if st := s.Stats(); st.SpareHeadroom != 2 {
		t.Fatalf("SpareHeadroom = %d, want 2", st.SpareHeadroom)
	}
	failNext = true
	if err := s.Write(2, 50, nil); err != nil {
		t.Fatal(err)
	}
	if s.Exhausted() {
		t.Fatal("one retirement against 2 spares must not exhaust")
	}
	if st := s.Stats(); st.SpareHeadroom != 1 {
		t.Fatalf("SpareHeadroom = %d, want 1", st.SpareHeadroom)
	}
	failNext = true
	if err := s.Write(3, 50, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Exhausted() {
		t.Fatal("spare pool empty but Exhausted is false")
	}
	st := s.Stats()
	if st.RetiredBlocks != 2 || st.SpareHeadroom != 0 || !st.Exhausted {
		t.Fatalf("stats at EOL: %+v", st)
	}
	// An exhausted store still serves what it holds.
	for _, k := range []uint64{1, 2, 3} {
		if !s.Contains(k) {
			t.Fatalf("key %d lost at EOL", k)
		}
	}
}

// TestScrubFindsCorruption pins the scrub loop's core: corruption
// planted in a sealed segment is found by ScrubStep and dropped via
// the invalidation path, while intact extents survive the pass.
func TestScrubFindsCorruption(t *testing.T) {
	md := NewMemDevice(8).(*memDevice)
	s, err := New(Config{SegmentSize: 200, Capacity: 1600, Device: md})
	if err != nil {
		t.Fatal(err)
	}
	// Fill a few segments so some seal.
	for k := uint64(0); k < 8; k++ {
		if err := s.Write(k, 100, bytes.Repeat([]byte{byte(k)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt key 2, which sits in a sealed segment (2 objects per
	// segment, head holds keys 6 and 7).
	corruptByte(t, s, md, 2)
	seenSegs := map[int]bool{}
	dropped := 0
	for i := 0; i < 16; i++ {
		seg, _, d := s.ScrubStep()
		if seg == -1 {
			break
		}
		if seenSegs[seg] {
			break // full lap
		}
		seenSegs[seg] = true
		dropped += d
	}
	if dropped != 1 {
		t.Fatalf("scrub dropped %d extents, want 1", dropped)
	}
	if s.Contains(2) {
		t.Fatal("scrub left the corrupt extent indexed")
	}
	st := s.Stats()
	if st.CorruptExtents != 1 {
		t.Fatalf("CorruptExtents = %d, want 1", st.CorruptExtents)
	}
	if st.ScrubbedSegments == 0 {
		t.Fatal("ScrubbedSegments did not advance")
	}
	// Every surviving extent still reads back intact.
	for k := uint64(0); k < 8; k++ {
		if k == 2 {
			continue
		}
		data, _, err := s.ReadExtent(k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !bytes.Equal(data, bytes.Repeat([]byte{byte(k)}, 100)) {
			t.Fatalf("key %d payload damaged by scrub", k)
		}
	}
}

// TestGCDropsCorruptSurvivor pins that the collector never copies
// corruption forward: a corrupt survivor in a GC victim is dropped at
// relocation time and charged to CorruptExtents.
func TestGCDropsCorruptSurvivor(t *testing.T) {
	md := NewMemDevice(4).(*memDevice)
	s, err := New(Config{SegmentSize: 100, Capacity: 400, Device: md})
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 sits alone in segment 0 with 50 live bytes; the unique
	// 60-byte keys after it make every other sealed segment more live,
	// so the first collection picks segment 0 and must try to relocate
	// the corrupt survivor.
	if err := s.Write(1, 50, bytes.Repeat([]byte{0xCC}, 50)); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, s, md, 1)
	for i := 0; i < 4; i++ {
		if err := s.Write(uint64(100+i), 60, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if s.Contains(1) {
		t.Fatal("corrupt survivor relocated instead of dropped")
	}
	st := s.Stats()
	if st.CorruptExtents != 1 {
		t.Fatalf("CorruptExtents = %d, want 1", st.CorruptExtents)
	}
	for i := 0; i < 4; i++ {
		if !s.Contains(uint64(100 + i)) {
			t.Fatalf("live key %d lost in collection", 100+i)
		}
	}
}

// TestResetPreservesRetiredBlocks pins that a process restart does not
// heal bad NAND: retired blocks stay out of the free pool across
// Reset, and the retirement counters carry over.
func TestResetPreservesRetiredBlocks(t *testing.T) {
	sd := newScriptDev(8)
	s, err := New(Config{SegmentSize: 100, Capacity: 800, Device: sd, SpareBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	sd.failProgram = func(call int) bool {
		count++
		return count == 2
	}
	if err := s.Write(1, 50, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, 50, nil); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", before.RetiredBlocks)
	}
	s.Reset()
	after := s.Stats()
	if after.RetiredBlocks != 1 {
		t.Fatalf("Reset changed RetiredBlocks: %d", after.RetiredBlocks)
	}
	// 8 segments, 1 retired, 1 active head: 6 free.
	if after.FreeSegments != after.Segments-2 {
		t.Fatalf("FreeSegments = %d, want %d (retired block must not rejoin)", after.FreeSegments, after.Segments-2)
	}
	// The store still works after the restart.
	if err := s.Write(3, 50, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(3) {
		t.Fatal("post-Reset write lost")
	}
}

// TestScrubStepRoundRobin pins the cursor: successive steps visit
// distinct sealed segments before lapping.
func TestScrubStepRoundRobin(t *testing.T) {
	s := newStore(t, 100, 800, nil)
	for k := uint64(0); k < 6; k++ {
		if err := s.Write(k, 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	first, _, _ := s.ScrubStep()
	second, _, _ := s.ScrubStep()
	if first == -1 || second == -1 {
		t.Fatalf("sealed segments exist but ScrubStep returned -1 (%d, %d)", first, second)
	}
	if first == second {
		t.Fatalf("cursor did not advance: scrubbed %d twice", first)
	}
}
