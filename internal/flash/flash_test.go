package flash

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newStore(t testing.TB, segSize, capacity int64, live func(uint64) bool) *Store {
	t.Helper()
	s, err := New(Config{SegmentSize: segSize, Capacity: capacity, Live: live})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{SegmentSize: 0, Capacity: 100}); err == nil {
		t.Fatal("zero segment size must be rejected")
	}
	if _, err := New(Config{SegmentSize: 100, Capacity: 0}); err == nil {
		t.Fatal("zero capacity must be rejected")
	}
	// Capacity rounds up to whole segments with a floor the collector
	// can operate in.
	s := newStore(t, 100, 150, nil)
	if got := s.Capacity(); got != int64(minSegments)*100 {
		t.Fatalf("capacity = %d, want %d", got, minSegments*100)
	}
	s = newStore(t, 100, 950, nil)
	if got := s.Capacity(); got != 1000 {
		t.Fatalf("capacity = %d, want 1000 (rounded up)", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, 1024, 8192, nil)
	payload := []byte("the quick brown fox")
	if err := s.Write(7, int64(len(payload)), payload); err != nil {
		t.Fatalf("write rejected: %v", err)
	}
	data, size, ok := s.Read(7)
	if !ok || size != int64(len(payload)) || !bytes.Equal(data, payload) {
		t.Fatalf("Read = %q, %d, %v; want the payload back", data, size, ok)
	}
	// Extent-only writes read back a nil payload with the right size.
	if err := s.Write(8, 300, nil); err != nil {
		t.Fatalf("extent-only write rejected: %v", err)
	}
	data, size, ok = s.Read(8)
	if !ok || size != 300 || data != nil {
		t.Fatalf("extent-only Read = %v, %d, %v; want nil, 300, true", data, size, ok)
	}
	if s.Contains(99) {
		t.Fatal("Contains(99) on an absent key")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestWriteRejectsOversizeAndNonPositive(t *testing.T) {
	s := newStore(t, 100, 1000, nil)
	if err := s.Write(1, 101, nil); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize write: err = %v, want ErrOversize", err)
	}
	if err := s.Write(2, 0, nil); !errors.Is(err, ErrOversize) {
		t.Fatalf("zero-size write: err = %v, want ErrOversize", err)
	}
	if err := s.Write(3, 50, []byte("xx")); err == nil {
		t.Fatal("data/size mismatch accepted")
	}
	st := s.Stats()
	if st.Oversize != 2 {
		t.Fatalf("Oversize = %d, want 2", st.Oversize)
	}
	if st.HostBytes != 0 {
		t.Fatalf("HostBytes = %d, want 0 after only rejected writes", st.HostBytes)
	}
	if st.WAF() != 1 {
		t.Fatalf("WAF of an unwritten store = %g, want 1", st.WAF())
	}
}

// TestOverwriteInvalidates pins that rewriting a key kills the old
// extent: live bytes reflect only the newest copy.
func TestOverwriteInvalidates(t *testing.T) {
	s := newStore(t, 100, 1000, nil)
	s.Write(1, 60, nil)
	s.Write(1, 40, nil)
	st := s.Stats()
	if st.LiveBytes != 40 {
		t.Fatalf("LiveBytes = %d, want 40 (old extent dead)", st.LiveBytes)
	}
	if st.HostBytes != 100 {
		t.Fatalf("HostBytes = %d, want 100 (both writes charged)", st.HostBytes)
	}
	if !s.Invalidate(1) {
		t.Fatal("Invalidate(1) found nothing")
	}
	if s.Invalidate(1) {
		t.Fatal("double Invalidate reported presence")
	}
	if st := s.Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after invalidation, want 0", st.LiveBytes)
	}
}

// TestGCReclaimsDeadSegments drives the log over its capacity with
// overwrites so collection must kick in, and checks the accounting
// identity the WAF measurement rests on.
func TestGCReclaimsDeadSegments(t *testing.T) {
	s := newStore(t, 100, 1000, nil) // 10 segments
	// Working set of 4 keys x 50 bytes = 200 live bytes; write each key
	// 50 times = 10000 host bytes through a 1000-byte device.
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 4; k++ {
			if err := s.Write(k, 50, nil); err != nil {
				t.Fatalf("round %d key %d: write failed: %v", round, k, err)
			}
		}
	}
	st := s.Stats()
	if st.HostBytes != 10000 {
		t.Fatalf("HostBytes = %d, want 10000", st.HostBytes)
	}
	if st.Erases == 0 {
		t.Fatal("no erases after 10x overwrite of the whole device")
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", st.Dropped)
	}
	if st.LiveBytes != 200 {
		t.Fatalf("LiveBytes = %d, want 200", st.LiveBytes)
	}
	for k := uint64(0); k < 4; k++ {
		if !s.Contains(k) {
			t.Fatalf("key %d lost across collections", k)
		}
	}
	if w := st.WAF(); w < 1 {
		t.Fatalf("WAF = %g < 1", w)
	}
	// With every old extent dead at collection time, victims are pure
	// garbage: relocation (and thus amplification) should stay tiny.
	if w := st.WAF(); w > 1.2 {
		t.Fatalf("WAF = %g for an all-dead overwrite workload, want ~1", w)
	}
}

// TestGCPicksLowestLiveness pins the greedy victim choice: a segment
// full of dead extents is erased before one full of live data, so live
// objects in cold segments survive collection untouched.
func TestGCPicksLowestLiveness(t *testing.T) {
	s := newStore(t, 100, 400, nil) // 4 segments
	// Segment 0: two live 50-byte objects (never overwritten).
	s.Write(1, 50, nil)
	s.Write(2, 50, nil)
	// Segment 1: two objects that immediately die by overwrite into
	// segment 2.
	s.Write(3, 50, nil)
	s.Write(4, 50, nil)
	s.Write(3, 50, nil)
	s.Write(4, 50, nil)
	// Filling segment 3 forces a roll that needs collection; the all-dead
	// segment 1 must be the victim — zero relocations.
	s.Write(5, 100, nil)
	s.Write(6, 100, nil)
	st := s.Stats()
	if st.Erases != 1 {
		t.Fatalf("Erases = %d, want exactly 1", st.Erases)
	}
	if st.GCBytes != 0 {
		t.Fatalf("GCBytes = %d, want 0 (victim was all dead)", st.GCBytes)
	}
	for _, k := range []uint64{1, 2, 3, 4, 5, 6} {
		if !s.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

// TestLazyPolicyInvalidation pins the Live callback: keys the policy
// evicted are discovered dead at collection time, not relocated, and
// dropped from the index.
func TestLazyPolicyInvalidation(t *testing.T) {
	evicted := map[uint64]bool{}
	s := newStore(t, 100, 400, func(key uint64) bool { return !evicted[key] })
	s.Write(1, 100, nil)
	s.Write(2, 100, nil)
	s.Write(3, 100, nil)
	// The policy evicts 1 and 2; flash does not know yet.
	evicted[1], evicted[2] = true, true
	if !s.Contains(1) {
		t.Fatal("lazy invalidation ran before any collection")
	}
	// Force collections: two more segment-sized writes need the
	// collector, which must treat 1 and 2 as garbage.
	s.Write(4, 100, nil)
	s.Write(5, 100, nil)
	st := s.Stats()
	if st.GCBytes != 0 {
		t.Fatalf("GCBytes = %d, want 0 (evicted keys must not relocate)", st.GCBytes)
	}
	if s.Contains(1) || s.Contains(2) {
		t.Fatal("evicted keys survived collection")
	}
	if !s.Contains(3) || !s.Contains(4) || !s.Contains(5) {
		t.Fatal("live keys lost")
	}
}

// TestRelocationPreservesPayloads drives payload-carrying writes
// through enough churn to force relocations and checks every surviving
// object reads back intact. The key sequence is pseudo-random so
// liveness scatters across segments — a strictly cyclic overwrite
// pattern leaves victims fully dead and never relocates.
func TestRelocationPreservesPayloads(t *testing.T) {
	s := newStore(t, 256, 1024, nil)
	content := func(k uint64, gen int) []byte {
		return bytes.Repeat([]byte{byte(k), byte(gen)}, 32)
	}
	gen := map[uint64]int{}
	rng := uint64(1)
	for round := 0; round < 120; round++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k := (rng >> 33) % 7
		gen[k]++
		if err := s.Write(k, 64, content(k, gen[k])); err != nil {
			t.Fatalf("round %d: write failed: %v", round, err)
		}
	}
	st := s.Stats()
	if st.Relocations == 0 {
		t.Fatal("workload never relocated; test lost its point")
	}
	for k := uint64(0); k < 7; k++ {
		if gen[k] == 0 {
			continue
		}
		data, size, ok := s.Read(k)
		if !ok || size != 64 {
			t.Fatalf("key %d: Read ok=%v size=%d", k, ok, size)
		}
		if !bytes.Equal(data, content(k, gen[k])) {
			t.Fatalf("key %d: payload corrupted across relocation", k)
		}
	}
}

// TestRestoreDoesNotChargeHostWrites pins the snapshot-rebuild
// contract: Restore re-materializes residency without touching the
// host-byte counter, the WAF, or the erase counters.
func TestRestoreDoesNotChargeHostWrites(t *testing.T) {
	s := newStore(t, 100, 1000, nil)
	for k := uint64(0); k < 8; k++ {
		if err := s.Restore(k, 50); err != nil {
			t.Fatalf("Restore(%d) failed: %v", k, err)
		}
	}
	st := s.Stats()
	if st.HostBytes != 0 || st.GCBytes != 0 || st.Erases != 0 {
		t.Fatalf("Restore charged wear counters: %+v", st)
	}
	if st.LiveBytes != 400 {
		t.Fatalf("LiveBytes = %d, want 400", st.LiveBytes)
	}
	if st.WAF() != 1 {
		t.Fatalf("WAF = %g, want 1", st.WAF())
	}
	// Subsequent host traffic is charged normally.
	s.Write(100, 50, nil)
	if st := s.Stats(); st.HostBytes != 50 {
		t.Fatalf("HostBytes = %d after one host write, want 50", st.HostBytes)
	}
}

// TestResetClearsDataKeepsWear pins Reset's restart semantics: data
// and index gone, cumulative wear counters intact, no phantom erases.
func TestResetClearsDataKeepsWear(t *testing.T) {
	s := newStore(t, 100, 400, nil)
	for i := 0; i < 40; i++ {
		s.Write(uint64(i%3), 60, nil)
	}
	before := s.Stats()
	if before.Erases == 0 {
		t.Fatal("workload produced no erases; test lost its point")
	}
	s.Reset()
	after := s.Stats()
	if after.LiveBytes != 0 || s.Len() != 0 {
		t.Fatal("Reset left live data behind")
	}
	if after.FreeSegments != after.Segments-1 {
		t.Fatalf("FreeSegments = %d, want %d (all but the head)", after.FreeSegments, after.Segments-1)
	}
	if after.HostBytes != before.HostBytes || after.GCBytes != before.GCBytes || after.Erases != before.Erases {
		t.Fatalf("Reset changed wear counters: before %+v after %+v", before, after)
	}
}

// TestErasesPerSegment checks the per-block histogram sums to the
// total and stays roughly leveled under a uniform overwrite workload
// (greedy victim choice over uniform death is naturally rotating).
func TestErasesPerSegment(t *testing.T) {
	s := newStore(t, 100, 800, nil)
	for i := 0; i < 400; i++ {
		s.Write(uint64(i%5), 50, nil)
	}
	per := s.ErasesPerSegment()
	var sum int64
	for _, e := range per {
		sum += e
	}
	st := s.Stats()
	if sum != st.Erases {
		t.Fatalf("per-segment erases sum to %d, total says %d", sum, st.Erases)
	}
	if st.MaxSegmentErases < st.MinSegmentErases {
		t.Fatalf("min/max erases inverted: %+v", st)
	}
}

// TestWAFRisesWithUtilization pins the device physics the subsystem
// exists to measure: the same workload through a store with less
// overprovisioned slack must amplify more (victims are more live, so
// the collector relocates more per erase).
func TestWAFRisesWithUtilization(t *testing.T) {
	run := func(capacity int64) float64 {
		s := newStore(t, 100, capacity, nil)
		// 16 keys x 50 bytes = 800 live bytes, overwritten in a
		// pseudo-random order so segment liveness scatters.
		rng := uint64(9)
		for i := 0; i < 800; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if err := s.Write((rng>>33)%16, 50, nil); err != nil {
				t.Fatalf("capacity %d: write %d failed: %v", capacity, i, err)
			}
		}
		return s.Stats().WAF()
	}
	tight, roomy := run(1200), run(2400)
	if tight <= roomy {
		t.Fatalf("WAF(tight)=%g <= WAF(roomy)=%g; amplification must rise with utilization", tight, roomy)
	}
}

// TestDeterministicReplay pins that the same write sequence yields
// bit-identical wear counters — the property every WAF-comparison test
// in the serving stack relies on.
func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		s := newStore(t, 128, 1024, nil)
		for i := 0; i < 500; i++ {
			s.Write(uint64(i*7%23), int64(20+i%60), nil)
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestConcurrentWriters hammers one store from many goroutines (the
// race matrix runs this under -race at several GOMAXPROCS) and checks
// the counters still satisfy the accounting invariants.
func TestConcurrentWriters(t *testing.T) {
	s := newStore(t, 1024, 64*1024, nil)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := uint64(w*31+i) % 97
				if i%17 == 0 {
					s.Invalidate(k)
					continue
				}
				s.Write(k, int64(64+(i%8)*32), nil)
				if i%5 == 0 {
					s.Read(k)
					s.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d under concurrency, want 0", st.Dropped)
	}
	if st.LiveBytes < 0 {
		t.Fatalf("LiveBytes went negative: %+v", st)
	}
	if st.WAF() < 1 {
		t.Fatalf("WAF = %g < 1", st.WAF())
	}
	if s.Len() > 97 {
		t.Fatalf("index holds %d keys, only 97 distinct ever written", s.Len())
	}
}

// TestConcurrentScrubAndWrites runs the scrub patrol against live
// write/read/invalidate traffic — the interleaving the background
// Scrubber produces in the daemon. The race matrix runs this under
// -race at several GOMAXPROCS; the invariant checks pin that a scrub
// pass racing a GC or an overwrite never drops a healthy extent's
// accounting below zero or strands the cursor.
func TestConcurrentScrubAndWrites(t *testing.T) {
	s := newStore(t, 1024, 64*1024, nil)
	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrubDone := make(chan int, 1)
	go func() {
		scrubbed := 0
		for {
			select {
			case <-stop:
				scrubDone <- scrubbed
				return
			default:
			}
			if seg, _, _ := s.ScrubStep(); seg >= 0 {
				scrubbed++
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := uint64(w*31+i) % 97
				if i%17 == 0 {
					s.Invalidate(k)
					continue
				}
				s.Write(k, int64(64+(i%8)*32), nil)
				if i%5 == 0 {
					s.Read(k)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrubbed := <-scrubDone
	st := s.Stats()
	if scrubbed == 0 || st.ScrubbedSegments == 0 {
		t.Fatalf("scrub made no progress against live traffic: %d steps, %+v", scrubbed, st)
	}
	// A healthy device: the scrub must never have dropped anything.
	if st.CorruptExtents != 0 || st.ReadErrors != 0 {
		t.Fatalf("scrub dropped healthy extents: %+v", st)
	}
	if st.LiveBytes < 0 {
		t.Fatalf("LiveBytes went negative: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: Stats is a plain value; fmt must render it without
	// tripping any accessor.
	s := newStore(t, 100, 400, nil)
	s.Write(1, 50, nil)
	_ = fmt.Sprintf("%+v", s.Stats())
}
