package flash

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFlashRead drives the integrity property the checksum layer
// exists for: after arbitrary single-byte corruption of the device
// image, a read either returns the exact original payload or an
// error — never silently wrong bytes. A follow-up scrub pass must
// drop every extent the corruption touched and leave the rest intact.
func FuzzFlashRead(f *testing.F) {
	f.Add([]byte("seed payload"), uint32(3), byte(0x01))
	f.Add([]byte{}, uint32(0), byte(0x00))
	f.Add(bytes.Repeat([]byte{0xA5}, 200), uint32(150), byte(0xFF))
	f.Add([]byte("x"), uint32(1<<20), byte(0x80))
	f.Fuzz(func(t *testing.T, payload []byte, corruptOff uint32, xor byte) {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		md := NewMemDevice(8).(*memDevice)
		s, err := New(Config{SegmentSize: 2048, Capacity: 16 * 1024, Device: md})
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64][]byte{}
		for k := uint64(1); k <= 3; k++ {
			p := append([]byte(nil), payload...)
			p = append(p, byte(k)) // distinct, non-empty payload per key
			if err := s.Write(k, int64(len(p)), p); err != nil {
				t.Fatalf("Write(%d): %v", k, err)
			}
			want[k] = p
		}
		// Corrupt one byte somewhere in the device image (mod the total
		// image length so every fuzz input lands).
		var total int64
		for _, img := range md.segs {
			total += int64(len(img))
		}
		if total > 0 && xor != 0 {
			off := int64(corruptOff) % total
			for seg, img := range md.segs {
				if off < int64(len(img)) {
					md.segs[seg][off] ^= xor
					break
				}
				off -= int64(len(img))
			}
		}
		check := func(stage string) {
			for k, p := range want {
				data, size, err := s.ReadExtent(k)
				switch {
				case err == nil:
					if size != int64(len(p)) || !bytes.Equal(data, p) {
						t.Fatalf("%s: key %d returned wrong bytes without an error", stage, k)
					}
				case errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNotFound):
					// Detected (and dropped) — the acceptable outcome.
				default:
					t.Fatalf("%s: key %d: unexpected error %v", stage, k, err)
				}
			}
		}
		check("direct read")
		// A full scrub pass after the reads must leave only verifiable
		// extents behind.
		for id := 0; id < 8; id++ {
			s.ScrubSegment(id)
		}
		check("post-scrub")
		if st := s.Stats(); st.CorruptExtents > 1 {
			t.Fatalf("one flipped byte charged %d corrupt extents", st.CorruptExtents)
		}
	})
}
