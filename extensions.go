package otacache

// Extensions beyond the paper's core evaluation: the two-tier OC/DC
// deployment architecture of §2.1 (Figure 1), the SSD endurance model
// behind the paper's lifetime motivation (§1), a concurrent sharded
// cache front, and the online-learning alternative §4.4.3 mentions.

import (
	"io"

	"otacache/internal/cache"
	"otacache/internal/cluster"
	"otacache/internal/core"
	"otacache/internal/engine"
	"otacache/internal/flash"
	"otacache/internal/ml/cart"
	"otacache/internal/obs"
	"otacache/internal/server"
	"otacache/internal/ssd"
	"otacache/internal/tier"
	"otacache/internal/trace"
)

// Serving engine (the Figure 4 pipeline behind one entry point).
type (
	// Engine is the thread-safe cache engine: a replacement policy and
	// an admission filter composed behind Lookup/Snapshot with atomic
	// metrics. The simulator, the two-tier hierarchy, and a concurrent
	// cache server all drive this same pipeline.
	Engine = engine.Engine
	// EngineOutcome describes one Engine lookup (hit, admission
	// decision, SSD write).
	EngineOutcome = engine.Outcome
	// EngineMetrics is a point-in-time snapshot of an Engine's
	// counters, with the paper's hit/write-rate accessors.
	EngineMetrics = engine.Metrics
	// EngineServer is the serving interface both a single Engine and a
	// ShardedEngine satisfy — everything downstream (daemon, snapshots,
	// replay) programs against it.
	EngineServer = engine.Server
	// ShardedEngine routes keys over a consistent-hash ring to fully
	// independent Engines, one per shard, under one global tick stream.
	ShardedEngine = engine.ShardedEngine
	// ServingLayer is one assembled cache layer: an Engine plus the
	// criteria it was solved for — the unit a tiered deployment runs
	// per OC/DC node.
	ServingLayer = tier.Layer
)

// NewEngine composes a policy and an admission filter into the serving
// pipeline. filter == nil admits every miss (the traditional cache).
// The Engine is safe for concurrent use when its parts are: wrap the
// policy with NewShardedPolicy and use any filter but the online
// classifier.
func NewEngine(policy Policy, filter Filter) (*Engine, error) {
	return engine.New(policy, filter)
}

// BuildServingLayer assembles one serving-ready cache layer from a
// trace: policy, per-layer criteria, admission filter, and the Engine
// composing them (next is the trace's next-access index). Set
// lc.EngineShards > 1 to get a sharded layer (Layer.Server carries the
// resulting ShardedEngine; Layer.Engine is nil in that case).
func BuildServingLayer(t *Trace, next []int, cfg TierConfig, lc TierLayer) (*ServingLayer, error) {
	return tier.BuildLayer(t, next, cfg, lc)
}

// NewShardedEngine composes already-built engines into a shard-routed
// server: each engine owns its policy, admission filter, and history;
// keys are routed by consistent hashing seeded with ringSeed. A
// one-shard ShardedEngine behaves exactly like its single Engine.
func NewShardedEngine(shards []*Engine, ringSeed uint64) (*ShardedEngine, error) {
	return engine.NewShardedEngine(shards, ringSeed)
}

// Two-tier hierarchy (OC -> DC -> backend).
type (
	// TierConfig is a full two-layer simulation configuration.
	TierConfig = tier.Config
	// TierLayer configures one cache layer.
	TierLayer = tier.LayerConfig
	// TierResult is the two-layer outcome.
	TierResult = tier.Result
	// TierLatency models the three-hop read path.
	TierLatency = tier.Latency
	// TierFilter selects a layer's admission behaviour.
	TierFilter = tier.FilterKind
)

// Tier admission kinds.
const (
	TierAdmitAll   = tier.AdmitAll
	TierClassifier = tier.Classifier
	TierOracle     = tier.Oracle
	TierDoorkeeper = tier.Doorkeeper
)

// SimulateTiers runs a trace through the two-layer hierarchy of the
// paper's Figure 1.
func SimulateTiers(t *Trace, cfg TierConfig) (*TierResult, error) {
	return tier.Simulate(t, cfg)
}

// DefaultTierLatency returns the Eq. 3-6 constants plus a 1 ms OC->DC
// network hop.
func DefaultTierLatency() TierLatency { return tier.DefaultLatency() }

// Network cache daemon (the wire form of the serving engine; see
// cmd/otacached and cmd/otaload for the packaged binaries).
type (
	// CacheServer exposes an Engine over HTTP: object lookup/offer,
	// /stats with interval deltas, and admin endpoints for classifier
	// hot-swap and on-demand retraining.
	CacheServer = server.Server
	// CacheServerConfig bounds the server (connection cap, per-request
	// timeout, expected feature arity).
	CacheServerConfig = server.Config
	// CacheServerStats is one /stats scrape: cumulative and
	// since-last-scrape interval metrics.
	CacheServerStats = server.Stats
	// CacheClient speaks the daemon's wire protocol, including trace
	// replay at a target QPS.
	CacheClient = server.Client
	// ReplayOptions configures one CacheClient.Replay load run.
	ReplayOptions = server.ReplayOptions
	// ReplayReport is the outcome: throughput, latency percentiles, and
	// the server-side counter movement.
	ReplayReport = server.ReplayReport
	// LiveRetrainer labels live traffic by observed reaccess and
	// retrains the daemon's classifier on the paper's daily schedule.
	LiveRetrainer = server.Retrainer
)

// NewCacheServer wraps a serving engine — a single *Engine or a
// *ShardedEngine — in the HTTP daemon. Each engine's policy must be
// thread-safe (NewShardedPolicy).
func NewCacheServer(eng EngineServer, cfg CacheServerConfig) *CacheServer {
	return server.New(eng, cfg)
}

// BuildShardedServer assembles a shard-routed daemon from a trace in
// one step: it builds a serving layer with lc.EngineShards independent
// engine shards (criteria and bootstrap model solved once, capacity
// split evenly) and wraps the result in the HTTP server.
func BuildShardedServer(t *Trace, next []int, cfg TierConfig, lc TierLayer, serverCfg CacheServerConfig) (*CacheServer, *ServingLayer, error) {
	if lc.EngineShards < 1 {
		lc.EngineShards = 1
	}
	layer, err := tier.BuildLayer(t, next, cfg, lc)
	if err != nil {
		return nil, nil, err
	}
	return server.New(layer.Server, serverCfg), layer, nil
}

// NewCacheClient builds a client for a daemon at base (e.g.
// "http://127.0.0.1:8344") sized for the given worker concurrency.
func NewCacheClient(base string, workers int) *CacheClient {
	return server.NewClient(base, workers)
}

// SSD endurance.
type (
	// Endurance is an SSD wear budget (capacity, P/E cycles, WAF).
	Endurance = ssd.Endurance
	// EnduranceReport compares lifetimes at two write rates.
	EnduranceReport = ssd.Report
)

// DefaultTLC returns a typical TLC cache-device endurance profile.
// Override its guessed WAF with Endurance.WithMeasuredWAF when a flash
// store (AttachFlashStore) has measured the real one.
func DefaultTLC(capacityBytes int64) Endurance { return ssd.DefaultTLC(capacityBytes) }

// Flash device model (measured write amplification).
type (
	// FlashStore is a log-structured flash store: cached payloads in
	// erase-block segments with greedy GC, reporting measured WAF and
	// per-block erase counts.
	FlashStore = flash.Store
	// FlashStats is one store's wear accounting (host vs GC bytes,
	// erases, live bytes); FlashStats.WAF() is the measured
	// amplification to feed Endurance.WithMeasuredWAF.
	FlashStats = flash.Stats
)

// AttachFlashStore models the cache device under a serving engine: one
// log-structured store per shard, sized to the shard's policy capacity
// times overprovision (> 1), with erase blocks of segmentSize bytes.
// Every admitted miss is appended to the owning shard's log, evictions
// invalidate lazily at GC time, and EngineMetrics grows the Flash*
// wear counters. Call it after the engine is fully assembled and
// before restoring any snapshot.
func AttachFlashStore(srv EngineServer, segmentSize int64, overprovision float64) error {
	return engine.AttachFlash(srv, segmentSize, overprovision)
}

// LifetimeExtension converts a write-rate change into a lifetime
// factor (the paper's 79% write cut is ~4.8x).
func LifetimeExtension(beforeBytesPerDay, afterBytesPerDay float64) float64 {
	return ssd.ExtensionFactor(beforeBytesPerDay, afterBytesPerDay)
}

// WriteDensityRatio reproduces the paper's §1 cache-vs-backend write
// density example (1 TB SSD over 20 TB HDD -> 20:1).
func WriteDensityRatio(cacheBytes, backendBytes int64) float64 {
	return ssd.WriteDensityRatio(cacheBytes, backendBytes)
}

// Concurrency.

// NewShardedPolicy wraps single-threaded policies into a thread-safe,
// lock-per-shard cache front. factory builds one shard of the given
// byte capacity.
func NewShardedPolicy(capacity int64, shards int, factory func(shardCapacity int64) Policy) (Policy, error) {
	return cache.NewSharded(capacity, shards, factory)
}

// Distributed fleet (the paper's "many cache servers", §2.1).

// CacheCluster is a consistent-hash fleet of independent cache servers
// exposing the Policy interface.
type CacheCluster = cluster.Cluster

// NewCacheCluster builds a fleet of n servers splitting totalCapacity
// evenly, routed by consistent hashing. It satisfies Policy, so it
// drops into any place a single cache fits.
func NewCacheCluster(n int, totalCapacity int64, seed uint64, factory func(capacity int64) Policy) (*CacheCluster, error) {
	return cluster.New(n, totalCapacity, seed, factory)
}

// Non-ML admission baseline.

// FrequencyAdmission is the frequency-doorkeeper admission baseline
// (bloom doorkeeper + decayed count-min sketch, "admit on re-access").
type FrequencyAdmission = core.FrequencyAdmission

// NewFrequencyAdmission builds the baseline filter; width sizes the
// sketch (roughly the hot-object count), minFreq is the admission bar
// (<=0 means admit on the second appearance). Also available as
// ModeDoorkeeper in the simulator.
func NewFrequencyAdmission(width, minFreq int) (*FrequencyAdmission, error) {
	return core.NewFrequencyAdmission(width, minFreq)
}

// Online learning (the §4.4.3 alternative).

// OnlineClassifier is an incrementally updated logistic classifier;
// call Update with labelled observations as they become known.
type OnlineClassifier = core.OnlineLogit

// NewOnlineClassifier creates a cold online model over numFeatures
// features (learningRate <= 0 and l2 < 0 pick defaults).
func NewOnlineClassifier(numFeatures int, learningRate, l2 float64) (*OnlineClassifier, error) {
	return core.NewOnlineLogit(numFeatures, learningRate, l2)
}

// Model persistence.

// DecisionTree is the concrete trained CART model (TrainTree returns
// one behind the Classifier interface).
type DecisionTree = cart.Tree

// SaveTree persists a trained decision tree for deployment.
func SaveTree(t *DecisionTree, path string) error { return t.Save(path) }

// LoadTree loads a tree saved by SaveTree.
func LoadTree(path string) (*DecisionTree, error) { return cart.Load(path) }

// Observability (the daemon's measurement plane: GET /metrics, the
// latency histograms behind it, and the decision-trace ring served by
// GET /admin/trace).
type (
	// LatencyHistogram is a lock-free, mergeable, log-bucketed latency
	// histogram: zero allocations and no locks on Record, ~25% bucket
	// resolution, snapshots and quantiles while recorders run.
	LatencyHistogram = obs.Histogram
	// LatencySnapshot is one histogram's consistent point-in-time view
	// (Quantile, Add/Sub for intervals).
	LatencySnapshot = obs.HistogramSnapshot
	// EngineInstruments carries a serving engine's latency measurement
	// plane (sampled Lookup timing, per-decision classifier timing);
	// attach with Engine.SetInstruments or let NewCacheServer wire it.
	EngineInstruments = engine.Instruments
	// DecisionTraceEvent is one sampled per-request decision record:
	// key, shard, admission verdict, breaker state, flash outcome, and
	// stage timings (GET /admin/trace, binary form via
	// obs.DecodeEvents).
	DecisionTraceEvent = obs.TraceEvent
	// MetricSample is one parsed /metrics sample (name, labels, value).
	MetricSample = obs.Sample
)

// NewLatencyHistogram builds an empty histogram; Record takes
// nanoseconds (or Observe a time.Duration).
func NewLatencyHistogram() *LatencyHistogram { return obs.NewHistogram() }

// ParseMetricsText parses a Prometheus text exposition (a /metrics
// scrape) into samples; CacheClient.Metrics scrapes and parses in one
// call.
func ParseMetricsText(r io.Reader) ([]MetricSample, error) { return obs.ParseText(r) }

// MetricsBucketQuantile estimates a quantile from a scraped
// histogram's cumulative buckets (parallel le-bound and count slices),
// the standard histogram_quantile computation.
func MetricsBucketQuantile(les, cums []float64, q float64) float64 {
	return obs.BucketQuantile(les, cums, q)
}

// Trace persistence.

// SaveTrace writes a trace to a file in the binary trace format.
func SaveTrace(t *Trace, path string) error { return t.Save(path) }

// LoadTrace reads a trace written by SaveTrace (or cmd/tracegen).
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }
